//! The round FSM driving a generated DES core.
//!
//! The control schedule is data-independent (public); it is expressed
//! once as a list of per-cycle control words and can drive either the
//! zero-delay [`gm_netlist::Evaluator`] (fast functional checks) or the
//! event-driven [`gm_sim::ClockedSim`] (glitch-accurate power traces).

use super::core::{DesCoreNetlist, SboxStyle};
use crate::tables::SHIFTS;
use gm_core::MaskRng;
use gm_netlist::{Evaluator, NetId};
use gm_sim::clocked::Stimulus;
use gm_sim::engine::PowerSink;
use gm_sim::{ClockedCore, DelayModel, SimGraph};

/// One cycle's control word. `masks_for_round` loads the 14 fresh mask
/// bits for the given round during this cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleCtl {
    /// Assert `ctl_load` (state-register load path).
    pub load: bool,
    /// Assert `ctl_load_key`.
    pub load_key: bool,
    /// Assert `ctl_ir_en` (key rotation + IR capture at the cycle's end).
    pub ir_en: bool,
    /// Rotate by two.
    pub shift2: bool,
    /// Assert `ctl_state_en`.
    pub state_en: bool,
    /// FF enables.
    pub and1: bool,
    /// FF enables.
    pub and2: bool,
    /// FF enables.
    pub sel: bool,
    /// FF enables.
    pub mux2: bool,
    /// FF enables.
    pub sout: bool,
    /// PD mid-register enable.
    pub mid: bool,
    /// Present round `r`'s fresh masks on the mask inputs this cycle.
    pub masks_for_round: Option<usize>,
}

/// The complete control schedule for one encryption (excluding the
/// trailing flush cycle the drivers add).
pub fn schedule(style: SboxStyle) -> Vec<CycleCtl> {
    let mut s = Vec::new();
    // Setup cycle: plaintext/key shares arrive at the input pins.
    s.push(CycleCtl::default());
    s.push(CycleCtl { load: true, load_key: true, ..Default::default() });
    match style {
        SboxStyle::Ff => {
            for (r, &shift) in SHIFTS.iter().enumerate() {
                s.push(CycleCtl {
                    ir_en: true,
                    shift2: shift == 2,
                    masks_for_round: Some(r),
                    ..Default::default()
                });
                s.push(CycleCtl { and1: true, ..Default::default() });
                s.push(CycleCtl { and2: true, ..Default::default() });
                s.push(CycleCtl { sel: true, ..Default::default() });
                s.push(CycleCtl { mux2: true, ..Default::default() });
                s.push(CycleCtl { sout: true, ..Default::default() });
                s.push(CycleCtl { state_en: true, ..Default::default() });
            }
        }
        SboxStyle::Pd { .. } => {
            // Pre-load: the state mux still presents the IP right half
            // (load held high, key load released) while the key rotates
            // by SHIFTS[0], so IR captures E(R0) ⊕ K1.
            s.push(CycleCtl {
                load: true,
                ir_en: true,
                shift2: SHIFTS[0] == 2,
                masks_for_round: Some(0),
                ..Default::default()
            });
            for r in 0..16 {
                s.push(CycleCtl { mid: true, ..Default::default() });
                // State update; rounds 0..15 also capture the next IR on
                // the same edge (Fig. 9b's parallel update).
                let next = r + 1;
                s.push(CycleCtl {
                    state_en: true,
                    ir_en: next < 16,
                    shift2: next < 16 && SHIFTS[next] == 2,
                    masks_for_round: if next < 16 { Some(next) } else { None },
                    ..Default::default()
                });
            }
        }
    }
    s
}

/// Latency in clock cycles of one encryption (including load and the
/// trailing flush edge).
pub fn total_cycles(style: SboxStyle) -> usize {
    schedule(style).len() + 1
}

type CtlNet = (NetId, fn(&CycleCtl) -> bool);

fn control_nets(core: &DesCoreNetlist) -> [CtlNet; 11] {
    let c = &core.ctl;
    [
        (c.load, |x: &CycleCtl| x.load),
        (c.load_key, |x: &CycleCtl| x.load_key),
        (c.ir_en, |x| x.ir_en),
        (c.shift2, |x| x.shift2),
        (c.state_en, |x| x.state_en),
        (c.and1_en, |x| x.and1),
        (c.and2_en, |x| x.and2),
        (c.sel_en, |x| x.sel),
        (c.mux2_en, |x| x.mux2),
        (c.sout_en, |x| x.sout),
        (c.mid_en, |x| x.mid),
    ]
}

/// Per-encryption masked stimulus: the shares of plaintext and key plus
/// the sixteen 14-bit fresh-mask words.
#[derive(Debug, Clone)]
pub struct EncryptionInputs {
    /// Plaintext shares `(s0, s1)`.
    pub pt: (u64, u64),
    /// Key shares `(s0, s1)`.
    pub key: (u64, u64),
    /// 14 fresh bits per round (low 14 bits used).
    pub round_masks: [u16; 16],
}

impl EncryptionInputs {
    /// Freshly share `pt`/`key` and draw all round masks from `rng`.
    pub fn draw(pt: u64, key: u64, rng: &mut MaskRng) -> Self {
        let ptm = rng.bits(64);
        let keym = rng.bits(64);
        EncryptionInputs {
            pt: (ptm, pt ^ ptm),
            key: (keym, key ^ keym),
            round_masks: std::array::from_fn(|_| rng.bits(14) as u16),
        }
    }
}

/// Drive one encryption on the zero-delay evaluator (functional path).
pub fn encrypt_functional(core: &DesCoreNetlist, inputs: &EncryptionInputs) -> u64 {
    let mut ev = Evaluator::new(&core.netlist).expect("core validates");
    for i in 0..64 {
        ev.set_input(core.pt.s0[i], (inputs.pt.0 >> (63 - i)) & 1 == 1);
        ev.set_input(core.pt.s1[i], (inputs.pt.1 >> (63 - i)) & 1 == 1);
        ev.set_input(core.key.s0[i], (inputs.key.0 >> (63 - i)) & 1 == 1);
        ev.set_input(core.key.s1[i], (inputs.key.1 >> (63 - i)) & 1 == 1);
    }
    let nets = control_nets(core);
    for ctl in schedule(core.style).iter() {
        for (net, get) in nets {
            ev.set_input(net, get(ctl));
        }
        if let Some(r) = ctl.masks_for_round {
            for (b, &m) in core.masks.iter().enumerate() {
                ev.set_input(m, (inputs.round_masks[r] >> b) & 1 == 1);
            }
        }
        ev.clock(&core.netlist);
    }
    // Flush edge for the final state capture.
    for (net, _) in nets {
        ev.set_input(net, false);
    }
    ev.clock(&core.netlist);
    let mut ct = 0u64;
    for i in 0..64 {
        let bit = ev.value(core.ct.s0[i]) ^ ev.value(core.ct.s1[i]);
        ct = (ct << 1) | u64::from(bit);
    }
    ct
}

/// Owned (lifetime-free) driver state: the clocked event core plus the
/// prebuilt control schedule and a reused stimulus buffer. Campaign
/// workers hold one of these next to `Arc`s of the netlist/graph/delay
/// tables and call [`DesDriverCore::reset`] between traces; nothing is
/// rebuilt or reallocated per encryption.
pub struct DesDriverCore {
    clocked: ClockedCore,
    /// The (public, data-independent) control schedule, built once.
    schedule: Vec<CycleCtl>,
    /// Reused per-cycle stimulus buffer.
    stims: Vec<Stimulus>,
}

impl DesDriverCore {
    /// Build the driver state over a prebuilt [`SimGraph`] of the core.
    pub fn new(style: SboxStyle, graph: &SimGraph, period_ps: u64, seed: u64) -> Self {
        DesDriverCore {
            clocked: ClockedCore::new(graph, period_ps, seed),
            schedule: schedule(style),
            stims: Vec::with_capacity(256),
        }
    }

    /// Return the driver to the exact state of a freshly constructed one
    /// with the given seed: registers cleared, nets at the settled
    /// all-zero baseline, time at 0, delay/clk-to-Q RNG streams reseeded.
    pub fn reset(&mut self, graph: &SimGraph, seed: u64) {
        self.clocked.reset(graph, seed);
    }

    /// Clock period in ps.
    pub fn period_ps(&self) -> u64 {
        self.clocked.period_ps()
    }

    /// The underlying event-simulator core (read-only; counters survive
    /// [`DesDriverCore::reset`], so they accumulate over a campaign).
    pub fn sim(&self) -> &gm_sim::SimCore {
        self.clocked.sim()
    }

    /// Run one full encryption, streaming switching activity into `sink`.
    /// Device state persists across calls (no reset), like back-to-back
    /// operations on the real core; time restarts at 0 per call so power
    /// traces align.
    pub fn encrypt(
        &mut self,
        core: &DesCoreNetlist,
        graph: &SimGraph,
        delays: &DelayModel,
        inputs: &EncryptionInputs,
        sink: &mut impl PowerSink,
    ) -> u64 {
        // Restart the time base while keeping register contents.
        self.clocked.rebase_time();

        let nets = control_nets(core);
        let mut prev = CycleCtl::default();
        let data_offset = self.clocked.period_ps() / 8;
        let ctl_offset = self.clocked.period_ps() / 16;

        let mut stims = std::mem::take(&mut self.stims);
        for cyc in 0..self.schedule.len() {
            let ctl = self.schedule[cyc];
            stims.clear();
            if cyc == 0 {
                // Present plaintext/key shares during the load cycle.
                for i in 0..64 {
                    for (net, val) in [
                        (core.pt.s0[i], (inputs.pt.0 >> (63 - i)) & 1 == 1),
                        (core.pt.s1[i], (inputs.pt.1 >> (63 - i)) & 1 == 1),
                        (core.key.s0[i], (inputs.key.0 >> (63 - i)) & 1 == 1),
                        (core.key.s1[i], (inputs.key.1 >> (63 - i)) & 1 == 1),
                    ] {
                        stims.push(Stimulus { net, offset_ps: data_offset, value: val });
                    }
                }
            }
            for (net, get) in nets {
                if get(&ctl) != get(&prev) {
                    stims.push(Stimulus { net, offset_ps: ctl_offset, value: get(&ctl) });
                }
            }
            if let Some(r) = ctl.masks_for_round {
                for (b, &net) in core.masks.iter().enumerate() {
                    stims.push(Stimulus {
                        net,
                        offset_ps: data_offset,
                        value: (inputs.round_masks[r] >> b) & 1 == 1,
                    });
                }
            }
            self.clocked.step(graph, delays, &stims, sink);
            prev = ctl;
        }
        // Flush edge.
        stims.clear();
        for (net, get) in nets {
            if get(&prev) {
                stims.push(Stimulus { net, offset_ps: ctl_offset, value: false });
            }
        }
        self.clocked.step(graph, delays, &stims, sink);
        self.stims = stims;

        let mut ct = 0u64;
        for i in 0..64 {
            let bit = self.clocked.value(core.ct.s0[i]) ^ self.clocked.value(core.ct.s1[i]);
            ct = (ct << 1) | u64::from(bit);
        }
        ct
    }
}

/// Which graph a [`DesCoreDriver`] simulates over.
enum DriverGraph<'a> {
    Owned(Box<SimGraph>),
    Shared(&'a SimGraph),
}

impl DriverGraph<'_> {
    fn get(&self) -> &SimGraph {
        match self {
            DriverGraph::Owned(g) => g,
            DriverGraph::Shared(g) => g,
        }
    }
}

/// Event-driven driver producing glitch-accurate power traces.
///
/// Construction builds (or borrows via [`DesCoreDriver::with_graph`]) the
/// [`SimGraph`] for the core once; campaign loops call
/// [`DesCoreDriver::reset`] between traces instead of constructing a new
/// driver, which skips the graph/baseline rebuild and reuses the stimulus
/// and schedule buffers.
pub struct DesCoreDriver<'a> {
    core: &'a DesCoreNetlist,
    delays: &'a DelayModel,
    graph: DriverGraph<'a>,
    inner: DesDriverCore,
}

impl<'a> DesCoreDriver<'a> {
    /// Wrap a core with a clocked event simulation at the given period.
    pub fn new(
        core: &'a DesCoreNetlist,
        delays: &'a DelayModel,
        period_ps: u64,
        seed: u64,
    ) -> Self {
        let graph = Box::new(SimGraph::new(&core.netlist));
        let inner = DesDriverCore::new(core.style, &graph, period_ps, seed);
        DesCoreDriver { core, delays, graph: DriverGraph::Owned(graph), inner }
    }

    /// Like [`DesCoreDriver::new`], but sharing a prebuilt [`SimGraph`]
    /// (read-only, so one graph can serve every worker of a campaign).
    pub fn with_graph(
        core: &'a DesCoreNetlist,
        graph: &'a SimGraph,
        delays: &'a DelayModel,
        period_ps: u64,
        seed: u64,
    ) -> Self {
        let inner = DesDriverCore::new(core.style, graph, period_ps, seed);
        DesCoreDriver { core, delays, graph: DriverGraph::Shared(graph), inner }
    }

    /// Return the driver to the exact state of a freshly constructed one
    /// with the given seed (see [`DesDriverCore::reset`]).
    pub fn reset(&mut self, seed: u64) {
        self.inner.reset(self.graph.get(), seed);
    }

    /// Clock period in ps.
    pub fn period_ps(&self) -> u64 {
        self.inner.period_ps()
    }

    /// Cycles one encryption takes (including the flush edge).
    pub fn total_cycles(&self) -> usize {
        total_cycles(self.core.style)
    }

    /// Run one full encryption (see [`DesDriverCore::encrypt`]).
    pub fn encrypt(&mut self, inputs: &EncryptionInputs, sink: &mut impl PowerSink) -> u64 {
        self.inner.encrypt(self.core, self.graph.get(), self.delays, inputs, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist_gen::build_des_core;
    use crate::reference::Des;
    use gm_sim::power::NullSink;

    #[test]
    fn schedule_lengths() {
        // Setup + load + 16 rounds + flush: the paper's 115-cycle block.
        assert_eq!(total_cycles(SboxStyle::Ff), 115);
        assert_eq!(total_cycles(SboxStyle::Pd { unit_luts: 10 }), 1 + 1 + 1 + 32 + 1);
    }

    #[test]
    fn ff_core_functional_matches_reference() {
        let core = build_des_core(SboxStyle::Ff);
        let mut rng = MaskRng::new(171);
        for (pt, key) in [
            (0x0123456789ABCDEFu64, 0x133457799BBCDFF1u64),
            (0x8787878787878787, 0x0E329232EA6D0D73),
            (0xDEADBEEF01234567, 0xA55A_F00D_1234_5678),
        ] {
            let inputs = EncryptionInputs::draw(pt, key, &mut rng);
            assert_eq!(
                encrypt_functional(&core, &inputs),
                Des::new(key).encrypt_block(pt),
                "pt {pt:016x}"
            );
        }
    }

    #[test]
    fn pd_core_functional_matches_reference() {
        let core = build_des_core(SboxStyle::Pd { unit_luts: 1 });
        let mut rng = MaskRng::new(172);
        for (pt, key) in [
            (0x0123456789ABCDEFu64, 0x133457799BBCDFF1u64),
            (0x0000000000000000, 0xFFFFFFFFFFFFFFFF),
        ] {
            let inputs = EncryptionInputs::draw(pt, key, &mut rng);
            assert_eq!(
                encrypt_functional(&core, &inputs),
                Des::new(key).encrypt_block(pt),
                "pt {pt:016x}"
            );
        }
    }

    #[test]
    fn event_driver_matches_reference_ff() {
        let core = build_des_core(SboxStyle::Ff);
        let delays = DelayModel::nominal(&core.netlist);
        let period = 20_000;
        let mut drv = DesCoreDriver::new(&core, &delays, period, 3);
        let mut rng = MaskRng::new(173);
        for _ in 0..2 {
            let inputs = EncryptionInputs::draw(0x0123456789ABCDEF, 0x133457799BBCDFF1, &mut rng);
            let ct = drv.encrypt(&inputs, &mut NullSink);
            assert_eq!(ct, 0x85E813540F0AB405);
        }
    }

    /// A recycled driver (`reset` + shared graph) must be bit-identical
    /// to a freshly constructed one: same ciphertext, same power trace.
    #[test]
    fn reset_driver_matches_fresh() {
        use gm_sim::{PowerTrace, SimGraph};

        let core = build_des_core(SboxStyle::Pd { unit_luts: 1 });
        let delays = DelayModel::with_variation(&core.netlist, 0.15, 40.0, 99);
        let period = 20_000;
        let cycles = total_cycles(core.style) as u64;
        let mut rng = MaskRng::new(174);
        let batches: Vec<EncryptionInputs> = (0..3)
            .map(|_| EncryptionInputs::draw(0x0123456789ABCDEF, 0x133457799BBCDFF1, &mut rng))
            .collect();

        // Reference: a brand-new driver per trace (the old per-trace cost).
        let mut fresh = Vec::new();
        for (t, inputs) in batches.iter().enumerate() {
            let mut drv = DesCoreDriver::new(&core, &delays, period, 0xabc ^ t as u64);
            let mut trace = PowerTrace::new(0, 100, (cycles * period / 100) as usize);
            let ct = drv.encrypt(inputs, &mut trace);
            fresh.push((ct, trace.into_samples()));
        }

        // Recycled: one shared graph, one driver, reset per trace.
        let graph = SimGraph::new(&core.netlist);
        let mut drv = DesCoreDriver::with_graph(&core, &graph, &delays, period, 0);
        for (t, inputs) in batches.iter().enumerate() {
            drv.reset(0xabc ^ t as u64);
            let mut trace = PowerTrace::new(0, 100, (cycles * period / 100) as usize);
            let ct = drv.encrypt(inputs, &mut trace);
            assert_eq!(ct, fresh[t].0, "trace {t}: ciphertext differs");
            assert_eq!(trace.samples(), fresh[t].1.as_slice(), "trace {t}: power differs");
        }
    }
}
