//! Gate-level masked S-box, secAND2-PD flavour (Fig. 9a).
//!
//! Path delays are applied to the S-box inputs as **tapped delay lines**:
//! one line per input share, long enough for the deepest schedule that
//! share participates in, with taps at every DelayUnit boundary. Each
//! product chain then picks the taps of its own Table II schedule:
//!
//! * pair `vh·vl` (descending variable order): `vh` at (1,1) DelayUnits,
//!   `vl` at (0,2);
//! * triple `vh·vm·vl`: `vh` at (2,2), `vm` at (1,3), `vl` at (0,4) —
//!   exactly the paper's "c₁ is delayed by 4 DelayUnits" critical path;
//! * MUX stage 1: `b₀` at (1,1), `b₅` at (0,2);
//! * MUX stage 2: registered selects at (1,1) (shared across the four
//!   output bits), registered mini outputs at (0,2).
//!
//! Sharing taps keeps the DelayUnit count near the paper's (~60 per
//! S-box). The equal-delay share pairs (the (1,1)/(2,2) x-role lines)
//! run as long parallel wires — the adjacency §VII-C blames for coupling
//! — and are reported in [`SboxPdArtifacts::coupled_pairs`].

use super::sbox_ff::{mux_stage1, xor_stage, Pair};
use super::MaskedWire;
use crate::sbox::mini::TEN_PRODUCTS;
use gm_core::gadgets::sec_and2::build_sec_and2;
use gm_core::gadgets::AndInputs;
use gm_netlist::{NetId, Netlist};
use std::collections::HashMap;

/// Physical artefacts of one PD S-box that leakage experiments need.
#[derive(Debug, Clone, Default)]
pub struct SboxPdArtifacts {
    /// Ends of adjacent equal-length delay-line pairs carrying the two
    /// shares of the same signal (crosstalk candidates).
    pub coupled_pairs: Vec<(NetId, NetId)>,
    /// Total delay elements inserted.
    pub delay_bufs: usize,
    /// Total DelayUnits (delay elements / unit size).
    pub delay_units: usize,
}

/// A tapped delay line: `taps[u]` is the signal delayed by `u` DelayUnits.
struct TappedLine {
    taps: Vec<NetId>,
}

impl TappedLine {
    fn new(raw: NetId) -> Self {
        TappedLine { taps: vec![raw] }
    }

    fn tap(
        &mut self,
        n: &mut Netlist,
        units: usize,
        unit_luts: usize,
        art: &mut SboxPdArtifacts,
    ) -> NetId {
        while self.taps.len() <= units {
            let last = *self.taps.last().expect("non-empty");
            let next = n.delay_chain(last, unit_luts);
            art.delay_bufs += unit_luts;
            art.delay_units += 1;
            self.taps.push(next);
        }
        self.taps[units]
    }
}

/// Tap manager over the share nets of the four ANF variables.
struct VarLines {
    lines: HashMap<(usize, u8), TappedLine>,
}

impl VarLines {
    fn new(v: &[Pair; 4]) -> Self {
        let mut lines = HashMap::new();
        for (k, &(s0, s1)) in v.iter().enumerate() {
            lines.insert((k, 0), TappedLine::new(s0));
            lines.insert((k, 1), TappedLine::new(s1));
        }
        VarLines { lines }
    }

    fn at(
        &mut self,
        n: &mut Netlist,
        var: usize,
        units: (usize, usize),
        unit_luts: usize,
        art: &mut SboxPdArtifacts,
    ) -> Pair {
        let s0 = self.lines.get_mut(&(var, 0)).expect("line").tap(n, units.0, unit_luts, art);
        let s1 = self.lines.get_mut(&(var, 1)).expect("line").tap(n, units.1, unit_luts, art);
        (s0, s1)
    }
}

/// Build one PD-style masked S-box. `mid_en` loads the mid register
/// (mini outputs + selects) separating the two pipeline cycles.
pub fn build_sbox_pd(
    n: &mut Netlist,
    sbox: usize,
    bits: &MaskedWire,
    masks: &[NetId],
    mid_en: NetId,
    unit_luts: usize,
) -> (MaskedWire, SboxPdArtifacts) {
    assert_eq!(bits.width(), 6, "S-box input is 6 bits");
    assert_eq!(masks.len(), 14, "14 fresh mask nets");
    assert!(unit_luts >= 1, "a DelayUnit has at least one element");
    let mut art = SboxPdArtifacts::default();
    n.enter_module(format!("sbox{sbox}"));

    // ANF variables: v_k = input bit 4-k.
    let v: [Pair; 4] = std::array::from_fn(|k| bits.bit(4 - k));
    let mut lines = VarLines::new(&v);

    // AND stage: per-product chains over tapped delay lines.
    n.enter_module("and_stage");
    let mut coupled: HashMap<(usize, usize), (NetId, NetId)> = HashMap::new();
    let mut products: Vec<Pair> = Vec::with_capacity(10);
    for &mask in TEN_PRODUCTS.iter() {
        // Variables of this product, descending.
        let vars: Vec<usize> = (0..4usize).rev().filter(|k| mask & (1 << k) != 0).collect();
        let out = match vars.as_slice() {
            [h, l] => {
                let x = lines.at(n, *h, (1, 1), unit_luts, &mut art);
                coupled.insert((*h, 1), x);
                let y = lines.at(n, *l, (0, 2), unit_luts, &mut art);
                build_and(n, x, y)
            }
            [h, m, l] => {
                let x = lines.at(n, *h, (2, 2), unit_luts, &mut art);
                coupled.insert((*h, 2), x);
                let ym = lines.at(n, *m, (1, 3), unit_luts, &mut art);
                let g1 = build_and(n, x, ym);
                let yl = lines.at(n, *l, (0, 4), unit_luts, &mut art);
                build_and(n, g1, yl)
            }
            _ => unreachable!("products have 2 or 3 variables"),
        };
        products.push(out);
    }
    art.coupled_pairs.extend(coupled.into_values());
    // Refresh.
    let products: Vec<Pair> = products
        .into_iter()
        .enumerate()
        .map(|(i, (z0, z1))| (n.xor2(z0, masks[i]), n.xor2(z1, masks[i])))
        .collect();
    n.exit_module();

    // Mini XOR stage (combinational, same cycle, undelayed variables).
    n.enter_module("xor_stage");
    let mini = xor_stage(n, sbox, &v, &products);
    n.exit_module();

    n.enter_module("mux");
    // MUX stage 1 on delayed b0/b5 copies: b0 = (1,1), b5 = (0,2).
    let b0 = bits.bit(0);
    let b5 = bits.bit(5);
    let mut b0_line0 = TappedLine::new(b0.0);
    let mut b0_line1 = TappedLine::new(b0.1);
    let mut b5_line1 = TappedLine::new(b5.1);
    let hi0 = b0_line0.tap(n, 1, unit_luts, &mut art);
    let hi1 = b0_line1.tap(n, 1, unit_luts, &mut art);
    art.coupled_pairs.push((hi0, hi1));
    let lo1 = b5_line1.tap(n, 2, unit_luts, &mut art);
    let sel = mux_stage1(n, (hi0, hi1), (b5.0, lo1), &masks[10..14], |n, io| {
        let o = build_sec_and2(n, io);
        (o.z0, o.z1)
    });

    // Mid register: selects + mini outputs (the 2-cycle boundary).
    let sel_reg: [Pair; 4] =
        std::array::from_fn(|r| (n.dff_en(sel[r].0, mid_en), n.dff_en(sel[r].1, mid_en)));
    let mini_reg: [[Pair; 4]; 4] = std::array::from_fn(|r| {
        std::array::from_fn(|j| (n.dff_en(mini[r][j].0, mid_en), n.dff_en(mini[r][j].1, mid_en)))
    });

    // Stage 2: delayed selects (1,1) shared across output bits; mini
    // outputs delayed (0,2).
    let sel_delayed: [Pair; 4] = std::array::from_fn(|r| {
        let s0 = n.delay_chain(sel_reg[r].0, unit_luts);
        let s1 = n.delay_chain(sel_reg[r].1, unit_luts);
        art.delay_bufs += 2 * unit_luts;
        art.delay_units += 2;
        art.coupled_pairs.push((s0, s1));
        (s0, s1)
    });
    let mut out_s0 = Vec::with_capacity(4);
    let mut out_s1 = Vec::with_capacity(4);
    // `j` walks the inner (bit) dimension of the row-major mini outputs.
    #[allow(clippy::needless_range_loop)]
    for j in 0..4 {
        let mut terms0 = Vec::with_capacity(4);
        let mut terms1 = Vec::with_capacity(4);
        for r in 0..4 {
            let y1 = n.delay_chain(mini_reg[r][j].1, 2 * unit_luts);
            art.delay_bufs += 2 * unit_luts;
            art.delay_units += 2;
            let o = build_sec_and2(
                n,
                AndInputs { x0: sel_delayed[r].0, x1: sel_delayed[r].1, y0: mini_reg[r][j].0, y1 },
            );
            terms0.push(o.z0);
            terms1.push(o.z1);
        }
        out_s0.push(n.xor_reduce(&terms0));
        out_s1.push(n.xor_reduce(&terms1));
    }
    n.exit_module();
    n.exit_module();
    (MaskedWire { s0: out_s0, s1: out_s1 }, art)
}

fn build_and(n: &mut Netlist, x: Pair, y: Pair) -> Pair {
    let o = build_sec_and2(n, AndInputs { x0: x.0, x1: x.1, y0: y.0, y1: y.1 });
    (o.z0, o.z1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sbox_lookup;
    use crate::tables::SBOXES;
    use gm_core::MaskRng;
    use gm_netlist::Evaluator;

    fn fixture(
        sbox: usize,
        unit_luts: usize,
    ) -> (Netlist, MaskedWire, Vec<NetId>, NetId, MaskedWire, SboxPdArtifacts) {
        let mut n = Netlist::new("sbox_pd");
        let bits = MaskedWire::inputs(&mut n, "b", 6);
        let masks: Vec<NetId> = (0..14).map(|i| n.input(format!("m{i}"))).collect();
        let mid_en = n.input("mid_en");
        let (out, art) = build_sbox_pd(&mut n, sbox, &bits, &masks, mid_en, unit_luts);
        for (i, &o) in out.s0.iter().enumerate() {
            n.output(format!("o_s0_{i}"), o);
        }
        for (i, &o) in out.s1.iter().enumerate() {
            n.output(format!("o_s1_{i}"), o);
        }
        n.validate().unwrap();
        (n, bits, masks, mid_en, out, art)
    }

    /// Functional check across all 8 S-boxes: two evaluation cycles
    /// (mid-register capture, then stage 2).
    #[allow(clippy::needless_range_loop)]
    #[test]
    fn matches_reference() {
        let mut rng = MaskRng::new(161);
        for sbox in 0..8 {
            let (n, bits, masks, mid_en, out, _) = fixture(sbox, 1);
            let mut ev = Evaluator::new(&n).unwrap();
            for six in (0..64u8).step_by(3) {
                for i in 0..6 {
                    let val = (six >> (5 - i)) & 1 == 1;
                    let m = rng.bit();
                    ev.set_input(bits.s0[i], m);
                    ev.set_input(bits.s1[i], val ^ m);
                }
                for &mnet in &masks {
                    ev.set_input(mnet, rng.bit());
                }
                ev.set_input(mid_en, true);
                ev.clock(&n);
                ev.set_input(mid_en, false);
                ev.settle(&n);
                let mut got = 0u8;
                for j in 0..4 {
                    got = (got << 1) | u8::from(ev.value(out.s0[j]) ^ ev.value(out.s1[j]));
                }
                assert_eq!(got, sbox_lookup(&SBOXES[sbox], six), "S{sbox} in {six:06b}");
            }
        }
    }

    /// DelayUnit count stays near the paper's ~60 per S-box, and the
    /// element count scales with the unit size.
    #[test]
    fn delay_unit_budget() {
        let (_, _, _, _, _, a1) = fixture(0, 1);
        let (_, _, _, _, _, a10) = fixture(0, 10);
        assert_eq!(a1.delay_units, a10.delay_units, "units independent of size");
        assert!(
            (50..=75).contains(&a1.delay_units),
            "~60 DelayUnits per S-box (paper ~493/8): {}",
            a1.delay_units
        );
        assert_eq!(a10.delay_bufs, 10 * a1.delay_bufs);
    }

    /// Coupled pairs: the x-role product lines, b0's, and the 4 shared
    /// stage-2 select lines.
    #[test]
    fn coupled_pairs_reported() {
        let (_, _, _, _, _, art) = fixture(0, 10);
        // Pair-x lines: one per distinct (high var, 1) = v1..v3 as highs;
        // triple-x lines: (high var, 2) = v2, v3; b0; 4 stage-2 selects.
        assert!(
            (8..=12).contains(&art.coupled_pairs.len()),
            "coupled pairs: {}",
            art.coupled_pairs.len()
        );
    }
}
