//! Gate-level masked S-box, secAND2-FF flavour (Fig. 8a).
//!
//! Five pipeline stages controlled by four enable inputs:
//!
//! 1. pair products (`and1_en` captures their y₁ FFs),
//! 2. triple products (`and2_en`), with the MUX stage-1 select products
//!    computed in parallel (their y₁ FFs also on `and1_en`),
//! 3. refresh (combinational XOR with the 14 shared mask nets) and the
//!    mini S-box XOR stage; select register captures on `sel_en`,
//! 4. MUX stage-2 gadgets (`mux2_en` captures their y₁ FFs),
//! 5. MUX stage-3 XOR plane.

use super::MaskedWire;
use crate::sbox::mini::{mini_sbox_anfs, TEN_PRODUCTS};
use gm_core::gadgets::sec_and2_ff::build_sec_and2_ff;
use gm_core::gadgets::AndInputs;
use gm_netlist::{NetId, Netlist};

/// Enable inputs of one FF-style S-box.
#[derive(Debug, Clone, Copy)]
pub struct SboxFfControls {
    /// Captures y₁ of the pair-product and select gadgets.
    pub and1_en: NetId,
    /// Captures y₁ of the triple-product gadgets.
    pub and2_en: NetId,
    /// Loads the MUX stage-1 select register.
    pub sel_en: NetId,
    /// Captures y₁ of the MUX stage-2 gadgets.
    pub mux2_en: NetId,
}

/// Share pair of one masked signal.
pub(crate) type Pair = (NetId, NetId);

/// Build the ten refreshed products of the mini-S-box AND stage with
/// secAND2-FF gadgets. Returns products in [`TEN_PRODUCTS`] order.
fn and_stage_ff(
    n: &mut Netlist,
    v: &[Pair; 4],
    masks: &[NetId],
    and1_en: NetId,
    and2_en: NetId,
) -> Vec<Pair> {
    // Pairs first: keyed by their variable mask for triple reuse.
    let mut pair_out = std::collections::HashMap::new();
    let mut products = Vec::with_capacity(10);
    for &mask in TEN_PRODUCTS.iter().take(6) {
        let i = mask.trailing_zeros() as usize;
        let j = (mask & (mask - 1)).trailing_zeros() as usize;
        let out = build_sec_and2_ff(
            n,
            AndInputs { x0: v[i].0, x1: v[i].1, y0: v[j].0, y1: v[j].1 },
            and1_en,
        );
        pair_out.insert(mask, (out.z0, out.z1));
        products.push((out.z0, out.z1));
    }
    for &mask in TEN_PRODUCTS.iter().skip(6) {
        let high = 7 - mask.leading_zeros() as usize;
        let pair_mask = mask & !(1 << high);
        let p = pair_out[&pair_mask];
        let out = build_sec_and2_ff(
            n,
            AndInputs { x0: p.0, x1: p.1, y0: v[high].0, y1: v[high].1 },
            and2_en,
        );
        products.push((out.z0, out.z1));
    }
    // Refresh each product with its shared mask net.
    products
        .into_iter()
        .enumerate()
        .map(|(i, (z0, z1))| (n.xor2(z0, masks[i]), n.xor2(z1, masks[i])))
        .collect()
}

/// Assemble the four mini S-box outputs per row from the ANF: constant,
/// linear terms, and the refreshed products. Returns `[row][bit]`.
pub(crate) fn xor_stage(
    n: &mut Netlist,
    sbox: usize,
    v: &[Pair; 4],
    products: &[Pair],
) -> [[Pair; 4]; 4] {
    let anfs = mini_sbox_anfs();
    let rows = &anfs[sbox];
    std::array::from_fn(|r| {
        std::array::from_fn(|j| {
            let anf = &rows[r].outputs[j];
            let mut s0_terms = Vec::new();
            let mut s1_terms = Vec::new();
            for m in anf.monomials_of_degree(1) {
                let k = m.trailing_zeros() as usize;
                s0_terms.push(v[k].0);
                s1_terms.push(v[k].1);
            }
            for d in 2..=3u32 {
                for m in anf.monomials_of_degree(d) {
                    let idx = TEN_PRODUCTS.iter().position(|&t| t == m).expect("covered");
                    s0_terms.push(products[idx].0);
                    s1_terms.push(products[idx].1);
                }
            }
            let mut s0 = if s0_terms.is_empty() { n.const0() } else { n.xor_reduce(&s0_terms) };
            let s1 = if s1_terms.is_empty() { n.const0() } else { n.xor_reduce(&s1_terms) };
            if anf.constant() {
                s0 = n.inv(s0);
            }
            (s0, s1)
        })
    })
}

/// The four refreshed select products of MUX stage 1 (`sel[row]`,
/// row = 2·b₀ + b₅). `build_and` produces one masked AND.
pub(crate) fn mux_stage1(
    n: &mut Netlist,
    b0: Pair,
    b5: Pair,
    mux_masks: &[NetId],
    mut build_and: impl FnMut(&mut Netlist, AndInputs) -> (NetId, NetId),
) -> [Pair; 4] {
    let nb0 = (n.inv(b0.0), b0.1);
    let nb5 = (n.inv(b5.0), b5.1);
    std::array::from_fn(|r| {
        let hi = if r & 0b10 != 0 { b0 } else { nb0 };
        let lo = if r & 0b01 != 0 { b5 } else { nb5 };
        let (z0, z1) = build_and(n, AndInputs { x0: hi.0, x1: hi.1, y0: lo.0, y1: lo.1 });
        (n.xor2(z0, mux_masks[r]), n.xor2(z1, mux_masks[r]))
    })
}

/// Build one FF-style masked S-box. `bits` is the 6-bit masked input
/// (MSB-first), `masks` the 14 shared fresh-mask nets (10 product + 4
/// MUX). Returns the 4-bit masked output, MSB-first.
pub fn build_sbox_ff(
    n: &mut Netlist,
    sbox: usize,
    bits: &MaskedWire,
    masks: &[NetId],
    ctl: &SboxFfControls,
) -> MaskedWire {
    assert_eq!(bits.width(), 6, "S-box input is 6 bits");
    assert_eq!(masks.len(), 14, "14 fresh mask nets");
    n.enter_module(format!("sbox{sbox}"));

    // ANF variables (little-endian in the column index): v_k = bit 4-k.
    let v: [Pair; 4] = std::array::from_fn(|k| bits.bit(4 - k));

    n.enter_module("and_stage");
    let products = and_stage_ff(n, &v, &masks[..10], ctl.and1_en, ctl.and2_en);
    n.exit_module();

    n.enter_module("xor_stage");
    let mini = xor_stage(n, sbox, &v, &products);
    n.exit_module();

    n.enter_module("mux");
    let sel = mux_stage1(n, bits.bit(0), bits.bit(5), &masks[10..14], |n, io| {
        let out = build_sec_and2_ff(n, io, ctl.and1_en);
        (out.z0, out.z1)
    });
    // Register the refreshed selects (the synchronisation register the
    // paper places after MUX AND stage 1).
    let sel_reg: [Pair; 4] =
        std::array::from_fn(|r| (n.dff_en(sel[r].0, ctl.sel_en), n.dff_en(sel[r].1, ctl.sel_en)));

    // Stage 2: select AND, with the mini outputs as y operands.
    let mut out_s0 = Vec::with_capacity(4);
    let mut out_s1 = Vec::with_capacity(4);
    // `j` walks the inner (bit) dimension of the row-major mini outputs.
    #[allow(clippy::needless_range_loop)]
    for j in 0..4 {
        let mut terms0 = Vec::with_capacity(4);
        let mut terms1 = Vec::with_capacity(4);
        for r in 0..4 {
            let o = build_sec_and2_ff(
                n,
                AndInputs {
                    x0: sel_reg[r].0,
                    x1: sel_reg[r].1,
                    y0: mini[r][j].0,
                    y1: mini[r][j].1,
                },
                ctl.mux2_en,
            );
            terms0.push(o.z0);
            terms1.push(o.z1);
        }
        out_s0.push(n.xor_reduce(&terms0));
        out_s1.push(n.xor_reduce(&terms1));
    }
    n.exit_module();
    n.exit_module();
    MaskedWire { s0: out_s0, s1: out_s1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sbox_lookup;
    use crate::tables::SBOXES;
    use gm_core::MaskRng;
    use gm_netlist::Evaluator;

    fn fixture(sbox: usize) -> (Netlist, MaskedWire, Vec<NetId>, SboxFfControls, MaskedWire) {
        let mut n = Netlist::new("sbox_ff");
        let bits = MaskedWire::inputs(&mut n, "b", 6);
        let masks: Vec<NetId> = (0..14).map(|i| n.input(format!("m{i}"))).collect();
        let ctl = SboxFfControls {
            and1_en: n.input("and1_en"),
            and2_en: n.input("and2_en"),
            sel_en: n.input("sel_en"),
            mux2_en: n.input("mux2_en"),
        };
        let out = build_sbox_ff(&mut n, sbox, &bits, &masks, &ctl);
        for (i, &o) in out.s0.iter().enumerate() {
            n.output(format!("o_s0_{i}"), o);
        }
        for (i, &o) in out.s1.iter().enumerate() {
            n.output(format!("o_s1_{i}"), o);
        }
        n.validate().unwrap();
        (n, bits, masks, ctl, out)
    }

    fn drive(
        n: &Netlist,
        ev: &mut Evaluator,
        bits: &MaskedWire,
        masks: &[NetId],
        ctl: &SboxFfControls,
        six: u8,
        rng: &mut MaskRng,
    ) {
        for i in 0..6 {
            let val = (six >> (5 - i)) & 1 == 1;
            let m = rng.bit();
            ev.set_input(bits.s0[i], m);
            ev.set_input(bits.s1[i], val ^ m);
        }
        for &mnet in masks {
            ev.set_input(mnet, rng.bit());
        }
        let pulse = |ev: &mut Evaluator, net: NetId, n: &Netlist, others: &[NetId]| {
            for &o in others {
                ev.set_input(o, false);
            }
            ev.set_input(net, true);
            ev.clock(n);
            ev.set_input(net, false);
        };
        let all = [ctl.and1_en, ctl.and2_en, ctl.sel_en, ctl.mux2_en];
        pulse(ev, ctl.and1_en, n, &all);
        pulse(ev, ctl.and2_en, n, &all);
        pulse(ev, ctl.sel_en, n, &all);
        pulse(ev, ctl.mux2_en, n, &all);
        ev.settle(n);
    }

    /// Exhaustive functional check of the gate-level FF S-box against the
    /// reference lookup, across all boxes.
    #[allow(clippy::needless_range_loop)]
    #[test]
    fn matches_reference() {
        let mut rng = MaskRng::new(151);
        for sbox in 0..8 {
            let (n, bits, masks, ctl, out) = fixture(sbox);
            let mut ev = Evaluator::new(&n).unwrap();
            for six in 0..64u8 {
                drive(&n, &mut ev, &bits, &masks, &ctl, six, &mut rng);
                let mut got = 0u8;
                for j in 0..4 {
                    got = (got << 1) | u8::from(ev.value(out.s0[j]) ^ ev.value(out.s1[j]));
                }
                assert_eq!(got, sbox_lookup(&SBOXES[sbox], six), "S{sbox} in {six:06b}");
            }
        }
    }

    /// Thirty secAND2 gadgets per S-box, as the paper reports (§VI-A):
    /// 6 pairs + 4 triples + 4 selects + 16 stage-2. Each secAND2
    /// contributes exactly one INV (the ¬y₁), counted per module.
    #[test]
    fn gadget_count_is_thirty() {
        let (n, ..) = fixture(0);
        let invs_in = |module: &str| {
            n.gates()
                .iter()
                .enumerate()
                .filter(|(gi, g)| {
                    g.kind == gm_netlist::GateKind::Inv
                        && n.module_of(gm_netlist::GateId(*gi as u32)).contains(module)
                })
                .count()
        };
        assert_eq!(invs_in("and_stage"), 10, "pair + triple gadgets");
        // 4 select + 16 stage-2 gadgets + the two ¬b0/¬b5 inverters.
        assert_eq!(invs_in("mux"), 22);
        let ffs = n.gates().iter().filter(|g| g.kind.is_sequential()).count();
        // 30 gadget y1-FFs + 8 select-register FFs.
        assert_eq!(ffs, 38);
    }
}
