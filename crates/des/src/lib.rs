//! # gm-des
//!
//! The paper's case study: the Data Encryption Standard, both as a plain
//! reference implementation (with Triple-DES) and as two first-order
//! masked encryption cores built from the `gm-core` gadgets:
//!
//! * [`mod@reference`] — byte-exact DES/TDES with the official tables and
//!   NIST test vectors.
//! * [`sbox`] — the paper's S-box decomposition: each of the eight S-boxes
//!   as four 4-bit *mini S-boxes* (rows) plus a masked 4:1 MUX, with ANF
//!   extraction (Möbius transform) verifying the structural claims of
//!   §IV-A (degree ≤ 3, ten shared product terms).
//! * [`masked`] — the two DES cores: `core_ff` (secAND2-FF, 7 cycles per
//!   round) and `core_pd` (secAND2-PD, 2 cycles per round), both with the
//!   masked key schedule and the 14-fresh-bits-per-round refresh budget.
//! * [`netlist_gen`] — full gate-level netlists of both cores for the
//!   Table III utilisation numbers and gate-level leakage simulation.
//! * [`power`] — the fast cycle-accurate power model used for large
//!   TVLA campaigns (cross-validated against the event simulator).
//! * [`tvla_src`] — `gm_leakage::TraceSource` adapters over both the
//!   cycle model and the gate-level netlists.
//! * [`modes`] — ECB/CBC with PKCS#7 over any of the engines, so the
//!   masked cores drop into an existing TDES data path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod masked;
pub mod modes;
pub mod netlist_gen;
pub mod power;
pub mod reference;
pub mod sbox;
pub mod tables;
pub mod tvla_src;

pub use reference::{Des, Tdes};
