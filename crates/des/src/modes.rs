//! Block-cipher modes of operation over the DES/TDES engines.
//!
//! The paper motivates DES through TDES deployments (payment, transit),
//! which in practice run CBC. This module provides ECB and CBC with
//! PKCS#7 padding over any [`BlockCipher64`] — the reference ciphers and
//! both masked cores implement the trait, so a user can drop the
//! side-channel-protected engine into an existing data path.

use crate::masked::{MaskedDesFf, MaskedDesPd, MaskedTdesFf};
use crate::reference::{Des, Tdes};
use gm_core::MaskRng;

/// A 64-bit block cipher.
pub trait BlockCipher64 {
    /// Encrypt one block.
    fn encrypt_block(&mut self, block: u64) -> u64;
    /// Decrypt one block.
    fn decrypt_block(&mut self, block: u64) -> u64;
}

impl BlockCipher64 for Des {
    fn encrypt_block(&mut self, block: u64) -> u64 {
        Des::encrypt_block(self, block)
    }
    fn decrypt_block(&mut self, block: u64) -> u64 {
        Des::decrypt_block(self, block)
    }
}

impl BlockCipher64 for Tdes {
    fn encrypt_block(&mut self, block: u64) -> u64 {
        Tdes::encrypt_block(self, block)
    }
    fn decrypt_block(&mut self, block: u64) -> u64 {
        Tdes::decrypt_block(self, block)
    }
}

/// A masked core bundled with its randomness source.
///
/// Every block draws fresh masks from the embedded [`MaskRng`], exactly
/// like the paper's per-operation re-masking.
pub struct MaskedCipher<C> {
    core: C,
    rng: MaskRng,
}

impl<C> MaskedCipher<C> {
    /// Bundle a masked core with a randomness stream.
    pub fn new(core: C, rng: MaskRng) -> Self {
        MaskedCipher { core, rng }
    }
}

impl BlockCipher64 for MaskedCipher<MaskedDesFf> {
    fn encrypt_block(&mut self, block: u64) -> u64 {
        self.core.encrypt_with_cycles(block, &mut self.rng).0
    }
    fn decrypt_block(&mut self, block: u64) -> u64 {
        self.core.decrypt_with_cycles(block, &mut self.rng).0
    }
}

impl BlockCipher64 for MaskedCipher<MaskedDesPd> {
    fn encrypt_block(&mut self, block: u64) -> u64 {
        self.core.encrypt_with_cycles(block, &mut self.rng).0
    }
    fn decrypt_block(&mut self, block: u64) -> u64 {
        self.core.decrypt_with_cycles(block, &mut self.rng).0
    }
}

impl BlockCipher64 for MaskedCipher<MaskedTdesFf> {
    fn encrypt_block(&mut self, block: u64) -> u64 {
        self.core.encrypt_with_cycles(block, &mut self.rng).0
    }
    fn decrypt_block(&mut self, block: u64) -> u64 {
        self.core.decrypt_with_cycles(block, &mut self.rng).0
    }
}

fn to_block(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(bytes);
    u64::from_be_bytes(b)
}

/// PKCS#7-pad `data` to a whole number of 8-byte blocks.
pub fn pad_pkcs7(data: &[u8]) -> Vec<u8> {
    let pad = 8 - data.len() % 8;
    let mut out = data.to_vec();
    out.extend(std::iter::repeat_n(pad as u8, pad));
    out
}

/// Strip PKCS#7 padding; `None` when malformed.
pub fn unpad_pkcs7(data: &[u8]) -> Option<Vec<u8>> {
    let &pad = data.last()?;
    if pad == 0 || pad > 8 || data.len() < pad as usize || !data.len().is_multiple_of(8) {
        return None;
    }
    let (body, tail) = data.split_at(data.len() - pad as usize);
    tail.iter().all(|&b| b == pad).then(|| body.to_vec())
}

/// ECB-encrypt (PKCS#7-padded). Kept for interoperability; prefer CBC.
pub fn ecb_encrypt(cipher: &mut impl BlockCipher64, data: &[u8]) -> Vec<u8> {
    pad_pkcs7(data)
        .chunks_exact(8)
        .flat_map(|c| cipher.encrypt_block(to_block(c)).to_be_bytes())
        .collect()
}

/// ECB-decrypt and unpad; `None` on malformed padding.
pub fn ecb_decrypt(cipher: &mut impl BlockCipher64, data: &[u8]) -> Option<Vec<u8>> {
    if !data.len().is_multiple_of(8) {
        return None;
    }
    let plain: Vec<u8> = data
        .chunks_exact(8)
        .flat_map(|c| cipher.decrypt_block(to_block(c)).to_be_bytes())
        .collect();
    unpad_pkcs7(&plain)
}

/// CBC-encrypt (PKCS#7-padded) under the given IV.
pub fn cbc_encrypt(cipher: &mut impl BlockCipher64, iv: u64, data: &[u8]) -> Vec<u8> {
    let mut prev = iv;
    pad_pkcs7(data)
        .chunks_exact(8)
        .flat_map(|c| {
            prev = cipher.encrypt_block(to_block(c) ^ prev);
            prev.to_be_bytes()
        })
        .collect()
}

/// CBC-decrypt and unpad; `None` on malformed input.
pub fn cbc_decrypt(cipher: &mut impl BlockCipher64, iv: u64, data: &[u8]) -> Option<Vec<u8>> {
    if !data.len().is_multiple_of(8) {
        return None;
    }
    let mut prev = iv;
    let plain: Vec<u8> = data
        .chunks_exact(8)
        .flat_map(|c| {
            let ct = to_block(c);
            let pt = cipher.decrypt_block(ct) ^ prev;
            prev = ct;
            pt.to_be_bytes()
        })
        .collect();
    unpad_pkcs7(&plain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pkcs7_roundtrip_all_lengths() {
        for len in 0..40 {
            let data: Vec<u8> = (0..len as u8).collect();
            let padded = pad_pkcs7(&data);
            assert_eq!(padded.len() % 8, 0);
            assert!(padded.len() > data.len(), "always at least one pad byte");
            assert_eq!(unpad_pkcs7(&padded).unwrap(), data);
        }
    }

    #[test]
    fn pkcs7_rejects_malformed() {
        assert_eq!(unpad_pkcs7(&[]), None);
        assert_eq!(unpad_pkcs7(&[1, 2, 3]), None, "not block aligned");
        assert_eq!(unpad_pkcs7(&[0; 8]), None, "pad byte 0");
        let mut bad = pad_pkcs7(b"abc");
        bad[6] ^= 1; // corrupt a pad byte
        assert_eq!(unpad_pkcs7(&bad), None);
    }

    #[test]
    fn cbc_roundtrip_reference_tdes() {
        let mut c = Tdes::new_2key(0x133457799BBCDFF1, 0x0E329232EA6D0D73);
        let msg = b"the magic words are squeamish ossifrage";
        let ct = cbc_encrypt(&mut c, 0xA5A5_5A5A_DEAD_BEEF, msg);
        assert_ne!(&ct[..8], &ct[8..16], "CBC blocks differ");
        let pt = cbc_decrypt(&mut c, 0xA5A5_5A5A_DEAD_BEEF, &ct).unwrap();
        assert_eq!(pt, msg);
        assert_eq!(cbc_decrypt(&mut c, 0, &ct), None.or(cbc_decrypt(&mut c, 0, &ct)));
    }

    #[test]
    fn cbc_hides_repeating_blocks_ecb_does_not() {
        let mut c = Des::new(0x133457799BBCDFF1);
        let msg = [0x42u8; 24]; // three identical blocks
        let ecb = ecb_encrypt(&mut c, &msg);
        assert_eq!(&ecb[..8], &ecb[8..16], "ECB leaks structure");
        let cbc = cbc_encrypt(&mut c, 7, &msg);
        assert_ne!(&cbc[..8], &cbc[8..16], "CBC does not");
    }

    #[test]
    fn masked_cbc_equals_reference_cbc() {
        let key = 0x133457799BBCDFF1;
        let msg = b"masked data path, reference result";
        let iv = 0x0123_4567_89AB_CDEF;
        let mut reference = Des::new(key);
        let want = cbc_encrypt(&mut reference, iv, msg);

        let mut masked = MaskedCipher::new(MaskedDesFf::new(key), MaskRng::new(9));
        let got = cbc_encrypt(&mut masked, iv, msg);
        assert_eq!(got, want, "masking never changes ciphertexts");
        let back = cbc_decrypt(&mut masked, iv, &got).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn masked_tdes_ecb_roundtrip() {
        let mut c = MaskedCipher::new(
            MaskedTdesFf::new_2key(0x133457799BBCDFF1, 0x0E329232EA6D0D73),
            MaskRng::new(10),
        );
        let msg = b"TDES is still widely used today";
        let ct = ecb_encrypt(&mut c, msg);
        assert_eq!(ecb_decrypt(&mut c, &ct).unwrap(), msg);
    }
}
