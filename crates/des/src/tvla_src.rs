//! TVLA trace sources for the masked DES cores.
//!
//! Two backends, both implementing [`gm_leakage::TraceSource`]:
//!
//! * [`CycleModelSource`] — the fast cycle-accurate model
//!   ([`crate::masked`] cores + [`crate::power::PowerModel`]): one sample
//!   per clock cycle, ~10⁴ traces/s/thread. Used for the large TVLA
//!   campaigns of Figs. 14, 15, 17.
//! * [`GateLevelSource`] — the event-driven gate-level netlist
//!   ([`crate::netlist_gen`]): glitches and (optionally) crosstalk arise
//!   from circuit timing alone. ~50 traces/s/thread; used for power-trace
//!   figures (13/16) and for cross-validating the cycle model.
//!
//! Both follow the paper's acquisition protocol: fixed key (re-masked
//! every operation), fixed-vs-random plaintext, 14 fresh bits per round.

use crate::masked::core_ff::CycleRecord;
use crate::masked::{BitslicedDes, MaskedDesFf, MaskedDesPd};
use crate::netlist_gen::driver::EncryptionInputs;
use crate::netlist_gen::{build_des_core, DesCoreNetlist, DesDriverCore, SboxStyle};
use crate::power::{CycleLaneCounters, GroupScratch, PdLeakModel, PowerModel};
use gm_core::MaskRng;
use gm_leakage::{moments_wide_enabled, BlockLayout, Class, TraceSource};
use gm_netlist::bitslice::LANES;
use gm_obs::{Counter, Report};
use gm_sim::{CouplingModel, CouplingSink, DelayModel, MeasurementModel, PowerTrace, SimGraph};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Which masked core a source drives.
#[derive(Debug, Clone, Copy)]
pub enum CoreVariant {
    /// secAND2-FF core (7 cycles per round).
    Ff,
    /// secAND2-PD core with the given DelayUnit size.
    Pd {
        /// LUT-buffers per DelayUnit.
        unit_luts: usize,
    },
}

/// Configuration shared by both backends.
#[derive(Debug, Clone)]
pub struct SourceConfig {
    /// Core variant.
    pub variant: CoreVariant,
    /// The fixed DES key.
    pub key: u64,
    /// The fixed plaintext of the TVLA fixed class.
    pub fixed_pt: u64,
    /// Measurement-noise sigma (ADC counts per sample).
    pub noise_sigma: f64,
    /// `false` models the paper's "PRNG switched off" sanity check.
    pub prng_on: bool,
    /// Master seed.
    pub seed: u64,
}

impl SourceConfig {
    /// The paper's default evaluation setup for the given variant.
    pub fn new(variant: CoreVariant) -> Self {
        SourceConfig {
            variant,
            key: 0x133457799BBCDFF1,
            fixed_pt: 0x0123456789ABCDEF,
            noise_sigma: 12.0,
            prng_on: true,
            seed: 2023,
        }
    }
}

fn draw_pt(cfg: &SourceConfig, class: Class, rng: &mut SmallRng) -> u64 {
    match class {
        Class::Fixed => cfg.fixed_pt,
        Class::Random => rng.random(),
    }
}

fn mask_rng(cfg: &SourceConfig, stream: u64) -> MaskRng {
    if cfg.prng_on {
        MaskRng::new(cfg.seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    } else {
        MaskRng::disabled()
    }
}

// ---------------------------------------------------------------------
// Cycle-model backend
// ---------------------------------------------------------------------

/// Fast TVLA source over the cycle-accurate cores.
pub struct CycleModelSource {
    cfg: SourceConfig,
    ff: Option<MaskedDesFf>,
    pd: Option<MaskedDesPd>,
    power: PowerModel,
    mask_rng: MaskRng,
    pt_rng: SmallRng,
    num_samples: usize,
    /// Reused per-trace cycle buffer (the acquisition path allocates
    /// nothing per trace).
    cycles_buf: Vec<crate::masked::core_ff::CycleRecord>,
}

impl CycleModelSource {
    /// Build a source; the PD variant derives its leak model from the
    /// DelayUnit size ([`PdLeakModel::with_unit_luts`]).
    pub fn new(cfg: SourceConfig) -> Self {
        Self::with_stream(cfg, 0)
    }

    /// Override the PD leak parameters (ablations: coupling off, etc.).
    pub fn with_pd_leak(cfg: SourceConfig, leak: PdLeakModel) -> Self {
        let mut s = Self::with_stream(cfg, 0);
        s.power = PowerModel::pd(leak, s.cfg.noise_sigma, s.cfg.seed);
        s
    }

    fn with_stream(cfg: SourceConfig, stream: u64) -> Self {
        let seed = cfg.seed ^ stream.wrapping_mul(0xa076_1d64_78bd_642f);
        let (ff, pd, power, num_samples) = match cfg.variant {
            CoreVariant::Ff => (
                Some(MaskedDesFf::new(cfg.key)),
                None,
                PowerModel::ff(cfg.noise_sigma, seed),
                MaskedDesFf::TOTAL_CYCLES,
            ),
            CoreVariant::Pd { unit_luts } => (
                None,
                Some(MaskedDesPd::with_unit_luts(cfg.key, unit_luts)),
                PowerModel::pd(PdLeakModel::with_unit_luts(unit_luts), cfg.noise_sigma, seed),
                MaskedDesPd::TOTAL_CYCLES,
            ),
        };
        CycleModelSource {
            mask_rng: mask_rng(&cfg, stream),
            pt_rng: SmallRng::seed_from_u64(seed ^ 0x60be_e2be_e120_fc15),
            cfg,
            ff,
            pd,
            power,
            num_samples,
            cycles_buf: Vec::with_capacity(num_samples),
        }
    }
}

impl TraceSource for CycleModelSource {
    fn fork(&self, stream: u64) -> Self {
        let mut forked = Self::with_stream(self.cfg.clone(), stream.wrapping_add(1));
        forked.power.pd = self.power.pd;
        forked
    }

    fn num_samples(&self) -> usize {
        self.num_samples
    }

    fn trace(&mut self, class: Class, out: &mut [f64]) {
        let pt = draw_pt(&self.cfg, class, &mut self.pt_rng);
        if let Some(ff) = &self.ff {
            ff.encrypt_with_cycles_into(pt, &mut self.mask_rng, &mut self.cycles_buf);
        } else {
            self.pd.as_ref().expect("one core set").encrypt_with_cycles_into(
                pt,
                &mut self.mask_rng,
                &mut self.cycles_buf,
            );
        }
        self.power.trace_into(&self.cycles_buf, out);
    }

    fn obs_report(&self, report: &mut Report) {
        report.set_nonzero("rng.mask_words", self.mask_rng.obs_words_drawn());
    }
}

// ---------------------------------------------------------------------
// Bitsliced cycle-model backend
// ---------------------------------------------------------------------

/// 64-way bitsliced TVLA source over the cycle-accurate cores.
///
/// Same device model, seed derivation, and per-stream RNG consumption
/// order as [`CycleModelSource`] — campaign statistics are
/// **bit-identical** — but the masked encryptions of a block run 64
/// lanes at a time through [`BitslicedDes`], and per-lane cycle records
/// come out of one popcount reduction ([`CycleLaneCounters`]).
///
/// Two tails, switched by [`gm_leakage::moments_wide_enabled`]
/// (`GM_MOMENTS_WIDE`) at construction:
///
/// * **wide** (default) — the lane-major pipeline: no [`CycleRecord`]s
///   are materialised ([`CycleLaneCounters::skip_records`]); the counters'
///   sample-major count planes feed [`PowerModel::trace_group_into`]
///   (group-wide energy sweep, blocked lane transpose, one bulk ziggurat
///   noise tile) and each finished lane row lands in the row-major class
///   tile with a single copy — lane-major from evaluator to moment
///   state, DESIGN.md §2.13;
/// * **scalar tail** (`GM_MOMENTS_WIDE=0`) — the pinned reference: per-lane
///   record demux through the unchanged scalar [`PowerModel`], row-major
///   buffers, `add_block`.
///
/// Both tails consume the RNG streams in the same (lane, sample) order,
/// so they are bit-identical — asserted by the campaign tests below.
pub struct BitslicedCycleSource {
    cfg: SourceConfig,
    engine: BitslicedDes,
    is_ff: bool,
    power: PowerModel,
    mask_rng: MaskRng,
    pt_rng: SmallRng,
    num_samples: usize,
    counters: CycleLaneCounters,
    cycles_buf: Vec<CycleRecord>,
    pts_buf: Vec<u64>,
    /// Lane-major tail enabled (latched from [`moments_wide_enabled`] at
    /// construction so a source stays self-consistent with the layout it
    /// advertises; forks inherit it).
    wide: bool,
    group_scratch: GroupScratch,
    /// ≤64-lane groups run, and how many were partial (fewer labels than
    /// lanes: the tail chunk of a block, or single-trace calls).
    groups: Counter,
    groups_partial: Counter,
    lanes_used: Counter,
}

impl BitslicedCycleSource {
    /// Build a source; mirrors [`CycleModelSource::new`].
    pub fn new(cfg: SourceConfig) -> Self {
        Self::with_stream(cfg, 0)
    }

    /// Override the PD leak parameters (mirrors
    /// [`CycleModelSource::with_pd_leak`]).
    pub fn with_pd_leak(cfg: SourceConfig, leak: PdLeakModel) -> Self {
        let mut s = Self::with_stream(cfg, 0);
        s.power = PowerModel::pd(leak, s.cfg.noise_sigma, s.cfg.seed);
        s
    }

    fn with_stream(cfg: SourceConfig, stream: u64) -> Self {
        let seed = cfg.seed ^ stream.wrapping_mul(0xa076_1d64_78bd_642f);
        let (is_ff, power, num_samples) = match cfg.variant {
            CoreVariant::Ff => {
                (true, PowerModel::ff(cfg.noise_sigma, seed), MaskedDesFf::TOTAL_CYCLES)
            }
            CoreVariant::Pd { unit_luts } => (
                false,
                PowerModel::pd(PdLeakModel::with_unit_luts(unit_luts), cfg.noise_sigma, seed),
                MaskedDesPd::TOTAL_CYCLES,
            ),
        };
        BitslicedCycleSource {
            engine: BitslicedDes::new(cfg.key),
            mask_rng: mask_rng(&cfg, stream),
            pt_rng: SmallRng::seed_from_u64(seed ^ 0x60be_e2be_e120_fc15),
            cfg,
            is_ff,
            power,
            num_samples,
            counters: CycleLaneCounters::new(),
            cycles_buf: Vec::with_capacity(num_samples),
            pts_buf: Vec::with_capacity(LANES),
            wide: moments_wide_enabled(),
            group_scratch: GroupScratch::new(),
            groups: Counter::new(),
            groups_partial: Counter::new(),
            lanes_used: Counter::new(),
        }
    }

    /// Run one ≤64-lane group through the engine.
    fn run_group(&mut self) {
        if gm_obs::ENABLED {
            let n = self.pts_buf.len() as u64;
            self.groups.inc();
            if n < LANES as u64 {
                self.groups_partial.inc();
            }
            self.lanes_used.add(n);
        }
        if self.is_ff {
            self.engine.encrypt_ff_group(&self.pts_buf, &mut self.mask_rng, &mut self.counters);
        } else {
            self.engine.encrypt_pd_group(&self.pts_buf, &mut self.mask_rng, &mut self.counters);
        }
    }
}

impl TraceSource for BitslicedCycleSource {
    fn fork(&self, stream: u64) -> Self {
        let mut forked = Self::with_stream(self.cfg.clone(), stream.wrapping_add(1));
        forked.power.pd = self.power.pd;
        forked.wide = self.wide;
        forked
    }

    fn num_samples(&self) -> usize {
        self.num_samples
    }

    fn block_layout(&self) -> BlockLayout {
        // Both tails hand back row-major tiles: the sample-major layout
        // (and its `add_block64` fold) measured *slower* here, because
        // the per-sample accumulator chains stop the fold from
        // vectorising while the row-major fold's independent per-sample
        // lanes autovectorise — see DESIGN.md §2.13.
        BlockLayout::RowMajor
    }

    fn trace(&mut self, class: Class, out: &mut [f64]) {
        // A one-lane group consumes the same RNG stream as the scalar
        // path, so mixing single traces and blocks stays bit-identical.
        // Single traces always go through the record demux.
        self.counters.skip_records = false;
        self.pts_buf.clear();
        self.pts_buf.push(draw_pt(&self.cfg, class, &mut self.pt_rng));
        self.run_group();
        self.counters.lane_into(0, &mut self.cycles_buf);
        self.power.trace_into(&self.cycles_buf, out);
    }

    fn trace_block(
        &mut self,
        labels: &[Class],
        fixed: &mut [f64],
        random: &mut [f64],
    ) -> (usize, usize) {
        self.counters.skip_records = self.wide;
        let ns = self.num_samples;
        let (mut nf, mut nr) = (0usize, 0usize);
        if self.wide {
            // Lane-major tail: each finished lane trace is already a
            // contiguous row (the group power stage finishes traces in
            // lane-major rows), so landing it in the row-major class
            // tile is one straight copy and the block fold streams
            // independent per-sample accumulator chains — the layout the
            // vectoriser can use without reassociating any reduction
            // (DESIGN.md §2.13).
            for chunk in labels.chunks(LANES) {
                self.pts_buf.clear();
                for &class in chunk {
                    let pt = draw_pt(&self.cfg, class, &mut self.pt_rng);
                    self.pts_buf.push(pt);
                }
                self.run_group();
                self.power.trace_group_into(
                    &mut self.counters,
                    chunk.len(),
                    &mut self.group_scratch,
                    |lane, trace| {
                        let (buf, row) = match chunk[lane] {
                            Class::Fixed => (&mut *fixed, &mut nf),
                            Class::Random => (&mut *random, &mut nr),
                        };
                        buf[*row * ns..][..ns].copy_from_slice(trace);
                        *row += 1;
                    },
                );
            }
            return (nf, nr);
        }
        for chunk in labels.chunks(LANES) {
            self.pts_buf.clear();
            for &class in chunk {
                let pt = draw_pt(&self.cfg, class, &mut self.pt_rng);
                self.pts_buf.push(pt);
            }
            self.run_group();
            // Demux: lane ℓ is the chunk's ℓ-th label; stream each lane's
            // records through the scalar power model in label order.
            for (lane, &class) in chunk.iter().enumerate() {
                self.counters.lane_into(lane, &mut self.cycles_buf);
                let (buf, row) = match class {
                    Class::Fixed => (&mut *fixed, &mut nf),
                    Class::Random => (&mut *random, &mut nr),
                };
                let start = *row * ns;
                self.power.trace_into(&self.cycles_buf, &mut buf[start..start + ns]);
                *row += 1;
            }
        }
        (nf, nr)
    }

    fn obs_report(&self, report: &mut Report) {
        report.set_nonzero("rng.mask_words", self.mask_rng.obs_words_drawn());
        report.set_nonzero("lanes.groups", self.groups.get());
        report.set_nonzero("lanes.groups_partial", self.groups_partial.get());
        report.set_nonzero("lanes.used", self.lanes_used.get());
        report.set_nonzero("lanes.idle", self.groups.get() * LANES as u64 - self.lanes_used.get());
        let c = &self.counters;
        report.set_nonzero(
            "slice.words",
            c.reg.obs_words() + c.comb.obs_words() + c.glitch.obs_words() + c.coupling.obs_words(),
        );
        report.set_nonzero(
            "slice.transposes",
            c.reg.obs_transposes()
                + c.comb.obs_transposes()
                + c.glitch.obs_transposes()
                + c.coupling.obs_transposes(),
        );
        report.set_nonzero(
            "slice.segments",
            c.reg.obs_segments()
                + c.comb.obs_segments()
                + c.glitch.obs_segments()
                + c.coupling.obs_segments(),
        );
    }
}

/// Cycle-model source with a selectable backend: the 64-way bitsliced
/// engine (default) or the scalar reference (`--scalar` in the bench
/// binaries). Both produce bit-identical campaign statistics; the enum
/// lets every cycle-model campaign switch at run time.
// One long-lived instance per campaign worker, so the size gap between
// the variants (the bitsliced engine's inline lane buffers) costs
// nothing — boxing would only add a pointer chase to the trace path.
#[allow(clippy::large_enum_variant)]
pub enum AnyCycleSource {
    /// Scalar reference path ([`CycleModelSource`]).
    Scalar(CycleModelSource),
    /// 64-lane bitsliced path ([`BitslicedCycleSource`]).
    Bitsliced(BitslicedCycleSource),
}

impl AnyCycleSource {
    /// Build the chosen backend for a configuration.
    pub fn new(cfg: SourceConfig, scalar: bool) -> Self {
        if scalar {
            AnyCycleSource::Scalar(CycleModelSource::new(cfg))
        } else {
            AnyCycleSource::Bitsliced(BitslicedCycleSource::new(cfg))
        }
    }

    /// Build the chosen backend with overridden PD leak parameters.
    pub fn with_pd_leak(cfg: SourceConfig, leak: PdLeakModel, scalar: bool) -> Self {
        if scalar {
            AnyCycleSource::Scalar(CycleModelSource::with_pd_leak(cfg, leak))
        } else {
            AnyCycleSource::Bitsliced(BitslicedCycleSource::with_pd_leak(cfg, leak))
        }
    }

    /// Short name for bench records.
    pub fn backend_name(&self) -> &'static str {
        match self {
            AnyCycleSource::Scalar(_) => "scalar",
            AnyCycleSource::Bitsliced(_) => "bitsliced",
        }
    }
}

impl TraceSource for AnyCycleSource {
    fn fork(&self, stream: u64) -> Self {
        match self {
            AnyCycleSource::Scalar(s) => AnyCycleSource::Scalar(s.fork(stream)),
            AnyCycleSource::Bitsliced(s) => AnyCycleSource::Bitsliced(s.fork(stream)),
        }
    }

    fn num_samples(&self) -> usize {
        match self {
            AnyCycleSource::Scalar(s) => s.num_samples(),
            AnyCycleSource::Bitsliced(s) => s.num_samples(),
        }
    }

    fn trace(&mut self, class: Class, out: &mut [f64]) {
        match self {
            AnyCycleSource::Scalar(s) => s.trace(class, out),
            AnyCycleSource::Bitsliced(s) => s.trace(class, out),
        }
    }

    fn trace_block(
        &mut self,
        labels: &[Class],
        fixed: &mut [f64],
        random: &mut [f64],
    ) -> (usize, usize) {
        match self {
            AnyCycleSource::Scalar(s) => s.trace_block(labels, fixed, random),
            AnyCycleSource::Bitsliced(s) => s.trace_block(labels, fixed, random),
        }
    }

    fn block_layout(&self) -> BlockLayout {
        match self {
            AnyCycleSource::Scalar(s) => s.block_layout(),
            AnyCycleSource::Bitsliced(s) => s.block_layout(),
        }
    }

    fn obs_report(&self, report: &mut Report) {
        match self {
            AnyCycleSource::Scalar(s) => s.obs_report(report),
            AnyCycleSource::Bitsliced(s) => s.obs_report(report),
        }
    }
}

// ---------------------------------------------------------------------
// Gate-level backend
// ---------------------------------------------------------------------

/// Per-worker persistent acquisition sink: the power trace, optionally
/// wrapped in a crosstalk model. Cleared (not reallocated) per trace.
enum GateSink {
    Plain(PowerTrace),
    Coupled(CouplingSink<PowerTrace>),
}

impl GateSink {
    fn trace(&self) -> &PowerTrace {
        match self {
            GateSink::Plain(t) => t,
            GateSink::Coupled(s) => s.inner(),
        }
    }

    /// Forget the previous trace: zero the bins and (for the coupled
    /// variant) the crosstalk edge history.
    fn clear(&mut self) {
        match self {
            GateSink::Plain(t) => t.clear(),
            GateSink::Coupled(s) => {
                s.reset();
                s.inner_mut().clear();
            }
        }
    }
}

/// Glitch-accurate TVLA source over the generated netlists.
///
/// Every worker (fork) owns a persistent [`DesDriverCore`] and sink over
/// the shared, read-only [`SimGraph`]; per trace the driver is
/// [`DesDriverCore::reset`] with the next seed of the worker's seed
/// chain, which is bit-identical to the old construct-per-trace path but
/// skips the graph build, the baseline settle and every allocation.
pub struct GateLevelSource {
    cfg: SourceConfig,
    core: Arc<DesCoreNetlist>,
    graph: Arc<SimGraph>,
    delays: Arc<DelayModel>,
    coupling: Option<Arc<CouplingModel>>,
    period_ps: u64,
    bins_per_cycle: usize,
    measurement: MeasurementModel,
    mask_rng: MaskRng,
    pt_rng: SmallRng,
    driver_seed: u64,
    driver: DesDriverCore,
    sink: GateSink,
}

impl GateLevelSource {
    /// Build the netlist and its delay model. `coupling_k` (in toggle
    /// weights) attaches a Miller-coupling model to the PD delay lines;
    /// pass 0.0 to disable crosstalk.
    pub fn new(cfg: SourceConfig, bins_per_cycle: usize, coupling_k: f64) -> Self {
        let style = match cfg.variant {
            CoreVariant::Ff => SboxStyle::Ff,
            CoreVariant::Pd { unit_luts } => SboxStyle::Pd { unit_luts },
        };
        let core = build_des_core(style);
        let timing = gm_netlist::timing::analyze(&core.netlist).expect("core validates");
        // 20% clock margin over the critical path.
        let period_ps = timing.critical_path_ps * 6 / 5;
        let delays = DelayModel::with_variation(&core.netlist, 0.15, 40.0, cfg.seed ^ 0xdead);
        let coupling = (coupling_k > 0.0 && !core.coupled_pairs.is_empty()).then(|| {
            let mut cm = CouplingModel::new(600);
            for &(a, b) in &core.coupled_pairs {
                cm.add_pair(a, b, coupling_k);
            }
            Arc::new(cm)
        });
        let graph = SimGraph::new(&core.netlist);
        let cycles = crate::netlist_gen::driver::total_cycles(core.style);
        let num_samples = cycles * bins_per_cycle;
        let bin_ps = period_ps / bins_per_cycle as u64;
        let trace = PowerTrace::new(0, bin_ps, num_samples);
        let sink = match &coupling {
            Some(cm) => GateSink::Coupled(cm.sink(trace)),
            None => GateSink::Plain(trace),
        };
        let driver_seed = cfg.seed ^ 1;
        GateLevelSource {
            measurement: MeasurementModel::new(1.0, cfg.noise_sigma, 18, cfg.seed ^ 0xbeef),
            mask_rng: mask_rng(&cfg, 0),
            pt_rng: SmallRng::seed_from_u64(cfg.seed ^ 0x7c15_8f0d),
            driver: DesDriverCore::new(core.style, &graph, period_ps, driver_seed),
            driver_seed,
            cfg,
            core: Arc::new(core),
            graph: Arc::new(graph),
            delays: Arc::new(delays),
            coupling,
            period_ps,
            bins_per_cycle,
            sink,
        }
    }

    /// The generated core (for area/timing inspection).
    pub fn core(&self) -> &DesCoreNetlist {
        &self.core
    }

    /// Clock period used by the simulation.
    pub fn period_ps(&self) -> u64 {
        self.period_ps
    }

    fn cycles(&self) -> usize {
        crate::netlist_gen::driver::total_cycles(self.core.style)
    }
}

impl TraceSource for GateLevelSource {
    fn fork(&self, stream: u64) -> Self {
        let driver_seed = self.cfg.seed ^ stream.wrapping_mul(0xd192_ed03);
        let bin_ps = self.period_ps / self.bins_per_cycle as u64;
        let trace = PowerTrace::new(0, bin_ps, self.num_samples());
        let sink = match &self.coupling {
            Some(cm) => GateSink::Coupled(cm.sink(trace)),
            None => GateSink::Plain(trace),
        };
        GateLevelSource {
            cfg: self.cfg.clone(),
            core: Arc::clone(&self.core),
            graph: Arc::clone(&self.graph),
            delays: Arc::clone(&self.delays),
            coupling: self.coupling.clone(),
            period_ps: self.period_ps,
            bins_per_cycle: self.bins_per_cycle,
            measurement: MeasurementModel::new(
                1.0,
                self.cfg.noise_sigma,
                18,
                self.cfg.seed ^ 0xbeef ^ stream.wrapping_mul(0x2545_f491_4f6c_dd1d),
            ),
            mask_rng: mask_rng(&self.cfg, stream.wrapping_add(17)),
            pt_rng: SmallRng::seed_from_u64(
                self.cfg.seed ^ 0x7c15_8f0d ^ stream.wrapping_mul(0x9e37_79b9),
            ),
            driver: DesDriverCore::new(self.core.style, &self.graph, self.period_ps, driver_seed),
            driver_seed,
            sink,
        }
    }

    fn num_samples(&self) -> usize {
        self.cycles() * self.bins_per_cycle
    }

    fn trace(&mut self, class: Class, out: &mut [f64]) {
        let pt = draw_pt(&self.cfg, class, &mut self.pt_rng);
        let inputs = EncryptionInputs::draw(pt, self.cfg.key, &mut self.mask_rng);
        self.driver_seed = self.driver_seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
        self.driver.reset(&self.graph, self.driver_seed);
        self.sink.clear();
        match &mut self.sink {
            GateSink::Plain(t) => {
                let _ = self.driver.encrypt(&self.core, &self.graph, &self.delays, &inputs, t);
            }
            GateSink::Coupled(s) => {
                let _ = self.driver.encrypt(&self.core, &self.graph, &self.delays, &inputs, s);
            }
        }
        for (o, &s) in out.iter_mut().zip(self.sink.trace().samples()) {
            *o = self.measurement.sample(s);
        }
    }

    fn obs_report(&self, report: &mut Report) {
        report.set_nonzero("rng.mask_words", self.mask_rng.obs_words_drawn());
        self.driver.sim().obs_report("sim", report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_leakage::Campaign;

    #[test]
    fn cycle_model_source_runs() {
        let src = CycleModelSource::new(SourceConfig::new(CoreVariant::Ff));
        assert_eq!(src.num_samples(), 115);
        let r = Campaign::sequential(200, 1).run(&src);
        assert_eq!(r.total_traces(), 200);
    }

    #[test]
    fn prng_off_leaks_fast_in_cycle_model() {
        let mut cfg = SourceConfig::new(CoreVariant::Ff);
        cfg.prng_on = false;
        let src = CycleModelSource::new(cfg);
        let r = Campaign::sequential(3_000, 2).run(&src);
        assert!(r.max_abs_t1() > 4.5, "PRNG off must flag quickly: max|t1| = {}", r.max_abs_t1());
    }

    #[test]
    fn prng_on_ff_is_clean_at_small_n() {
        let src = CycleModelSource::new(SourceConfig::new(CoreVariant::Ff));
        let r = Campaign::sequential(3_000, 3).run(&src);
        assert!(
            r.max_abs_t1() < 6.0,
            "masked FF core should show no strong first-order leak: {}",
            r.max_abs_t1()
        );
    }

    /// The bitsliced backend must be *bit-identical* to the scalar one
    /// over a whole sequential campaign (labels spanning many 64-lane
    /// groups plus a partial tail), for both cores.
    #[test]
    fn bitsliced_campaign_bit_identical_to_scalar() {
        for variant in [CoreVariant::Ff, CoreVariant::Pd { unit_luts: 10 }] {
            let cfg = SourceConfig::new(variant);
            // 700 traces: two full 256-trace blocks + a 188-trace block,
            // whose last 64-lane chunk is partial.
            let campaign = Campaign::sequential(700, 9);
            let scalar = campaign.run(&CycleModelSource::new(cfg.clone()));
            let bitsliced = campaign.run(&BitslicedCycleSource::new(cfg));
            assert_eq!(scalar.fixed.count(), bitsliced.fixed.count());
            assert_eq!(scalar.t1(), bitsliced.t1(), "{variant:?} t1");
            assert_eq!(scalar.t2(), bitsliced.t2(), "{variant:?} t2");
            assert_eq!(scalar.t3(), bitsliced.t3(), "{variant:?} t3");
        }
    }

    /// Fig. 14 golden check: the full *parallel* campaign pipeline
    /// (persistent worker pool, per-worker source forks, blocked moment
    /// merge) reports the same `max|t1|` on both backends to 1e-9 —
    /// the acceptance criterion `bench_tvla` asserts on every run,
    /// pinned here at test size.
    #[test]
    fn fig14_parallel_max_t1_matches_scalar_golden() {
        let cfg = SourceConfig::new(CoreVariant::Ff);
        let campaign = Campaign { traces: 2_000, threads: 4, seed: 33 };
        let scalar = campaign.run(&AnyCycleSource::new(cfg.clone(), true));
        let bitsliced = campaign.run(&AnyCycleSource::new(cfg, false));
        assert!(
            (scalar.max_abs_t1() - bitsliced.max_abs_t1()).abs() < 1e-9,
            "fig14 max|t1| differs: scalar {} vs bitsliced {}",
            scalar.max_abs_t1(),
            bitsliced.max_abs_t1()
        );
    }

    /// The lane-major tail (`GM_MOMENTS_WIDE=1`, the default) must be
    /// *bit-identical* to the pinned scalar tail (`=0`) over whole
    /// sequential campaigns — partial tail groups included — for both
    /// cores. This is the contract that lets the runtime knob exist at
    /// all: flipping it never changes a single t-value bit.
    #[test]
    fn wide_moments_campaign_bit_identical_to_scalar_tail() {
        use gm_leakage::set_moments_wide;
        for variant in [CoreVariant::Ff, CoreVariant::Pd { unit_luts: 10 }] {
            let cfg = SourceConfig::new(variant);
            let campaign = Campaign::sequential(700, 9);
            set_moments_wide(false);
            let narrow_src = BitslicedCycleSource::new(cfg.clone());
            assert_eq!(narrow_src.block_layout(), gm_leakage::BlockLayout::RowMajor);
            let narrow = campaign.run(&narrow_src);
            set_moments_wide(true);
            let wide_src = BitslicedCycleSource::new(cfg);
            assert_eq!(wide_src.block_layout(), gm_leakage::BlockLayout::RowMajor);
            let wide = campaign.run(&wide_src);
            assert_eq!(narrow.fixed.count(), wide.fixed.count());
            assert_eq!(narrow.t1(), wide.t1(), "{variant:?} t1");
            assert_eq!(narrow.t2(), wide.t2(), "{variant:?} t2");
            assert_eq!(narrow.t3(), wide.t3(), "{variant:?} t3");
        }
        set_moments_wide(true);
    }

    /// Fig. 14-shaped campaign agreement under both `GM_MOMENTS_WIDE`
    /// settings, through the full parallel pipeline, against the scalar
    /// reference backend — the 1e-9 criterion of the bench gate, pinned
    /// at test size for both knob positions.
    #[test]
    fn fig14_parallel_agreement_under_both_moment_kernels() {
        use gm_leakage::set_moments_wide;
        let cfg = SourceConfig::new(CoreVariant::Ff);
        let campaign = Campaign { traces: 2_000, threads: 4, seed: 33 };
        let scalar = campaign.run(&AnyCycleSource::new(cfg.clone(), true));
        for wide in [false, true] {
            set_moments_wide(wide);
            let r = campaign.run(&AnyCycleSource::new(cfg.clone(), false));
            assert!(
                (scalar.max_abs_t1() - r.max_abs_t1()).abs() < 1e-9,
                "wide={wide}: max|t1| {} vs scalar {}",
                r.max_abs_t1(),
                scalar.max_abs_t1()
            );
            assert!(
                (scalar.max_abs_t(2) - r.max_abs_t(2)).abs() < 1e-9,
                "wide={wide}: max|t2| {} vs scalar {}",
                r.max_abs_t(2),
                scalar.max_abs_t(2)
            );
        }
        set_moments_wide(true);
    }

    /// The PD leak override propagates through forks identically on both
    /// backends (the Fig. 17 ablation path).
    #[test]
    fn bitsliced_pd_leak_override_matches_scalar() {
        let cfg = SourceConfig::new(CoreVariant::Pd { unit_luts: 10 });
        let leak = PdLeakModel { order_violation_prob: 0.0, glitch_gain: 0.0, coupling_eps: 0.0 };
        let campaign = Campaign::sequential(300, 17);
        let scalar = campaign.run(&AnyCycleSource::with_pd_leak(cfg.clone(), leak, true));
        let bitsliced = campaign.run(&AnyCycleSource::with_pd_leak(cfg, leak, false));
        assert_eq!(scalar.t1(), bitsliced.t1());
    }

    #[test]
    fn gate_level_source_runs_and_forks() {
        let src = GateLevelSource::new(SourceConfig::new(CoreVariant::Ff), 1, 0.0);
        let mut forked = src.fork(1);
        let mut buf = vec![0.0; src.num_samples()];
        forked.trace(Class::Fixed, &mut buf);
        assert!(buf.iter().any(|&s| s > 0.0), "power trace must be non-trivial");
    }

    /// Source observability: the observed campaign surfaces RNG draw
    /// counts, bitsliced lane utilisation, and gate-sim event censuses.
    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn source_obs_reports_populate() {
        // Bitsliced cycle model: 100 traces = one partial block of
        // two 64/36-lane groups (the second partial).
        let cfg = SourceConfig::new(CoreVariant::Ff);
        let (r, obs) =
            Campaign::sequential(100, 4).run_observed(&BitslicedCycleSource::new(cfg.clone()));
        assert_eq!(r.total_traces(), 100);
        let src = &obs.source;
        assert_eq!(src.get("lanes.groups"), Some(2));
        assert_eq!(src.get("lanes.groups_partial"), Some(1));
        assert_eq!(src.get("lanes.used"), Some(100));
        assert_eq!(src.get("lanes.idle"), Some(28));
        assert!(src.get("rng.mask_words").unwrap_or(0) > 0, "masking RNG must be drawn");
        assert!(src.get("slice.words").unwrap_or(0) > 0);
        assert!(src.get("slice.transposes").unwrap_or(0) > 0);

        // Scalar cycle model: only the RNG counter.
        let (_, obs) = Campaign::sequential(10, 4).run_observed(&CycleModelSource::new(cfg));
        assert!(obs.source.get("rng.mask_words").unwrap_or(0) > 0);
        assert_eq!(obs.source.get("lanes.groups"), None);

        // Gate level: simulator event census shows up under sim.*.
        let gate = GateLevelSource::new(SourceConfig::new(CoreVariant::Ff), 1, 0.0);
        let (_, obs) = Campaign::sequential(4, 4).run_observed(&gate);
        let src = &obs.source;
        assert!(src.get("sim.events").unwrap_or(0) > 0, "gate sim pops events");
        assert!(src.get("sim.transitions").unwrap_or(0) > 0);
        assert!(src.get("sim.resets").unwrap_or(0) >= 4, "one reset per trace");
        assert!(
            src.iter().any(|(k, _)| k.starts_with("sim.toggle.")),
            "per-gate-class census present"
        );
        assert!(src.iter().any(|(k, _)| k.starts_with("sim.wheel.")), "wheel stats present");
    }

    /// Gate-level campaigns at threads = 1 are bit-reproducible: the
    /// persistent per-worker driver/sink state must not leak anything
    /// from one run into the next (each `run` re-forks the source).
    #[test]
    fn gate_level_threads1_bit_reproducible() {
        let src = GateLevelSource::new(SourceConfig::new(CoreVariant::Pd { unit_luts: 1 }), 1, 0.4);
        let r1 = Campaign::sequential(24, 5).run(&src);
        let r2 = Campaign::sequential(24, 5).run(&src);
        assert_eq!(r1.total_traces(), r2.total_traces());
        assert_eq!(r1.t1(), r2.t1(), "sequential campaign must replay bit-identically");
    }
}
