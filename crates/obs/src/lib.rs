//! Zero-cost-when-disabled observability primitives for the glitchmask
//! acquisition stack.
//!
//! The workspace is fully offline, so this crate supplies the small slice
//! of the `tracing`/`metrics` API surface the simulators and campaign
//! drivers actually need, with no dependencies:
//!
//! * [`Counter`] — a plain monotonic event counter for single-owner hot
//!   paths (one writer, reads only at report time).
//! * [`AtomicCounter`] — the shared-ownership variant (relaxed atomics)
//!   for values updated from several worker threads.
//! * [`LogHist`] — a fixed-size power-of-two histogram
//!   ([`HIST_BUCKETS`] log2 buckets) for latency/occupancy
//!   distributions; merging is exact, no allocation ever.
//! * [`Stopwatch`] / [`Timer`] / [`Span`] — monotonic-clock span timing
//!   (`Instant`-based), mirroring `span!(..).in_scope(..)`:
//!   `stopwatch.span()` returns a guard that adds its elapsed time on
//!   drop, `stopwatch.time(f)` wraps a closure.
//! * [`Report`] — an ordered `name -> u64` bag that instrumented
//!   components fill via `obs_report`-style hooks and sinks serialize as
//!   a flat JSON object. `Report` is *always* compiled (so sink plumbing
//!   never needs feature gates); only the sources of its numbers
//!   compile out.
//! * [`trace`] — a timestamped span-tree recorder (`trace::span`)
//!   exporting Chrome trace-event JSON; capture is armed explicitly
//!   (`--trace-out`), so idle span sites cost one relaxed load.
//!
//! # The `obs-off` guarantee
//!
//! With the `obs-off` cargo feature every primitive above (except
//! [`Report`]) becomes a zero-sized type whose methods are empty
//! `#[inline(always)]` bodies — no branches, no loads, no stores remain
//! in instrumented hot loops, and struct layouts of instrumented types
//! shrink accordingly. Compound instrumentation (anything more than a
//! single counter bump, e.g. a table lookup feeding a census counter)
//! should additionally be wrapped in `if gm_obs::ENABLED { .. }`, which
//! is a `const` the optimizer folds away. Unit tests in this crate pin
//! the zero-size property so the guarantee cannot silently rot.

pub mod fmt;
mod metrics;
mod report;
pub mod trace;

pub use metrics::{
    bucket_lo, AtomicCounter, Counter, LogHist, Span, Stopwatch, Timer, HIST_BUCKETS,
};
pub use report::{escape_into, Report};

/// `true` when instrumentation is compiled in (the `obs-off` feature is
/// **not** active). A `const`, so `if gm_obs::ENABLED { .. }` blocks are
/// folded away entirely in `obs-off` builds.
pub const ENABLED: bool = cfg!(not(feature = "obs-off"));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_const_matches_feature() {
        assert_eq!(ENABLED, cfg!(not(feature = "obs-off")));
    }

    #[cfg(feature = "obs-off")]
    mod off {
        use super::*;

        /// The obs-off guarantee: every primitive is a ZST, so
        /// instrumented structs pay no layout cost.
        #[test]
        fn primitives_are_zero_sized() {
            assert_eq!(core::mem::size_of::<Counter>(), 0);
            assert_eq!(core::mem::size_of::<AtomicCounter>(), 0);
            assert_eq!(core::mem::size_of::<LogHist>(), 0);
            assert_eq!(core::mem::size_of::<Stopwatch>(), 0);
            assert_eq!(core::mem::size_of::<Timer>(), 0);
            assert_eq!(core::mem::size_of::<trace::TraceSpan>(), 0);
        }

        #[test]
        fn reads_are_zero() {
            let mut c = Counter::new();
            c.inc();
            c.add(17);
            assert_eq!(c.get(), 0);
            let a = AtomicCounter::new();
            a.inc();
            a.add(3);
            assert_eq!(a.get(), 0);
            let mut h = LogHist::new();
            h.record(1000);
            assert_eq!(h.count(), 0);
            assert_eq!(h.total(), 0);
            let mut sw = Stopwatch::new();
            {
                let _g = sw.span();
            }
            assert_eq!(sw.ns(), 0);
            let t = Timer::start();
            assert_eq!(t.elapsed_ns(), 0);
        }
    }
}
