//! [`Report`]: the ordered name → value bag instrumented components
//! export and metrics sinks serialize.

use crate::metrics::{bucket_lo, LogHist};
use std::collections::BTreeMap;

/// An ordered bag of named `u64` observations.
///
/// Instrumented components fill one via their `obs_report`-style hooks
/// (`"sim.events"`, `"pool.w0.blocks"`, ...); sinks merge worker reports
/// and serialize the result as a flat JSON object. Unlike the counters
/// that feed it, `Report` is compiled in *all* configurations — under
/// `obs-off` the counters read zero, and [`Report::set_nonzero`] keeps
/// such entries out entirely, so an `obs-off` report is simply empty.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    entries: BTreeMap<String, u64>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Set `name` to `v` (overwrites).
    pub fn set(&mut self, name: &str, v: u64) {
        self.entries.insert(name.to_string(), v);
    }

    /// Set `name` to `v` unless `v` is zero (the normal way to export a
    /// counter: `obs-off` builds and never-hit counters stay invisible).
    pub fn set_nonzero(&mut self, name: &str, v: u64) {
        if v != 0 {
            self.set(name, v);
        }
    }

    /// Add `v` to `name` (creating it at zero first).
    pub fn add(&mut self, name: &str, v: u64) {
        *self.entries.entry(name.to_string()).or_insert(0) += v;
    }

    /// Export a histogram under `prefix`: `<prefix>.count`,
    /// `<prefix>.total`, `<prefix>.max`, plus one `<prefix>.ge<lo>`
    /// entry per non-empty bucket (`lo` = inclusive bucket lower bound).
    pub fn set_hist(&mut self, prefix: &str, h: &LogHist) {
        if h.count() == 0 {
            return;
        }
        self.set(&format!("{prefix}.count"), h.count());
        self.set(&format!("{prefix}.total"), h.total());
        self.set(&format!("{prefix}.max"), h.max());
        for (i, &n) in h.buckets().iter().enumerate() {
            if n != 0 {
                self.set(&format!("{prefix}.ge{}", bucket_lo(i)), n);
            }
        }
    }

    /// Fold `other` in, summing values of matching names.
    pub fn merge(&mut self, other: &Report) {
        for (k, &v) in &other.entries {
            *self.entries.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Look up one entry.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries.get(name).copied()
    }

    /// Iterate entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the report has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize as a flat JSON object (`{"a.b":1,...}`), keys in name
    /// order. Keys are escaped, values are plain JSON integers.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(16 + self.entries.len() * 24);
        out.push('{');
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(k, &mut out);
            out.push_str("\":");
            out.push_str(&v.to_string());
        }
        out.push('}');
        out
    }
}

/// Append `s` JSON-string-escaped to `out` (quotes, backslashes, and
/// control characters; everything else passes through).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_add_get() {
        let mut r = Report::new();
        r.set("a", 1);
        r.add("a", 2);
        r.add("b", 5);
        r.set_nonzero("zero", 0);
        assert_eq!(r.get("a"), Some(3));
        assert_eq!(r.get("b"), Some(5));
        assert_eq!(r.get("zero"), None);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn merge_sums_matching_names() {
        let mut a = Report::new();
        a.set("x", 1);
        a.set("only_a", 7);
        let mut b = Report::new();
        b.set("x", 10);
        b.set("only_b", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), Some(11));
        assert_eq!(a.get("only_a"), Some(7));
        assert_eq!(a.get("only_b"), Some(3));
    }

    #[test]
    fn json_is_sorted_and_escaped() {
        let mut r = Report::new();
        r.set("b", 2);
        r.set("a", 1);
        r.set("weird\"key\\", 3);
        assert_eq!(r.to_json(), "{\"a\":1,\"b\":2,\"weird\\\"key\\\\\":3}");
        assert_eq!(Report::new().to_json(), "{}");
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn hist_export_names_buckets_by_lower_bound() {
        let mut h = LogHist::new();
        h.record(0);
        h.record(3);
        h.record(3000);
        let mut r = Report::new();
        r.set_hist("lat", &h);
        assert_eq!(r.get("lat.count"), Some(3));
        assert_eq!(r.get("lat.total"), Some(3003));
        assert_eq!(r.get("lat.max"), Some(3000));
        assert_eq!(r.get("lat.ge0"), Some(1));
        assert_eq!(r.get("lat.ge2"), Some(1));
        assert_eq!(r.get("lat.ge2048"), Some(1));
    }

    #[test]
    fn empty_hist_exports_nothing() {
        let mut r = Report::new();
        r.set_hist("lat", &LogHist::new());
        assert!(r.is_empty());
    }
}
