//! Counters, histograms, and span timing — live and `obs-off` variants.
//!
//! The two implementations live in sibling modules with identical public
//! APIs; the feature flag selects which one is exported. Keeping them as
//! whole-module mirrors (rather than `cfg` on every field) makes the
//! no-op variant trivially auditable: every method body is empty.

/// Number of log2 buckets in a [`LogHist`].
///
/// Bucket 0 holds the value 0; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`; the last bucket additionally absorbs everything
/// larger. 32 buckets cover `[0, 2^31)` exactly, which is plenty for
/// nanosecond spans up to ~2 s and for any queue-occupancy count.
pub const HIST_BUCKETS: usize = 32;

/// Inclusive lower bound of histogram bucket `i`.
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Bucket index for a recorded value (shared by both variants so the
/// mapping is defined even when recording compiles out).
#[inline(always)]
#[cfg_attr(feature = "obs-off", allow(dead_code))]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

#[cfg(not(feature = "obs-off"))]
mod live {
    use super::{bucket_index, HIST_BUCKETS};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    /// Single-owner monotonic event counter.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Counter {
        value: u64,
    }

    impl Counter {
        /// A counter at zero.
        pub const fn new() -> Self {
            Counter { value: 0 }
        }

        /// Count one event.
        #[inline(always)]
        pub fn inc(&mut self) {
            self.value += 1;
        }

        /// Count `n` events at once.
        #[inline(always)]
        pub fn add(&mut self, n: u64) {
            self.value += n;
        }

        /// Current count (0 forever under `obs-off`).
        #[inline]
        pub fn get(&self) -> u64 {
            self.value
        }

        /// Reset to zero (campaign boundaries).
        #[inline]
        pub fn reset(&mut self) {
            self.value = 0;
        }
    }

    /// Shared-ownership counter (relaxed atomics) for values bumped from
    /// several worker threads.
    #[derive(Debug, Default)]
    pub struct AtomicCounter {
        value: AtomicU64,
    }

    impl AtomicCounter {
        /// A counter at zero.
        pub const fn new() -> Self {
            AtomicCounter { value: AtomicU64::new(0) }
        }

        /// Count one event.
        #[inline(always)]
        pub fn inc(&self) {
            self.value.fetch_add(1, Ordering::Relaxed);
        }

        /// Count `n` events at once.
        #[inline(always)]
        pub fn add(&self, n: u64) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }

        /// Current count (0 forever under `obs-off`).
        #[inline]
        pub fn get(&self) -> u64 {
            self.value.load(Ordering::Relaxed)
        }
    }

    /// Fixed-layout log2 histogram ([`HIST_BUCKETS`] buckets), plus
    /// exact count / total / max of the recorded values.
    #[derive(Debug, Clone)]
    pub struct LogHist {
        buckets: [u64; HIST_BUCKETS],
        count: u64,
        total: u64,
        max: u64,
    }

    impl Default for LogHist {
        fn default() -> Self {
            Self::new()
        }
    }

    impl LogHist {
        /// An empty histogram.
        pub const fn new() -> Self {
            LogHist { buckets: [0; HIST_BUCKETS], count: 0, total: 0, max: 0 }
        }

        /// Record one value.
        #[inline(always)]
        pub fn record(&mut self, v: u64) {
            self.buckets[bucket_index(v)] += 1;
            self.count += 1;
            self.total += v;
            if v > self.max {
                self.max = v;
            }
        }

        /// Number of recorded values.
        #[inline]
        pub fn count(&self) -> u64 {
            self.count
        }

        /// Exact sum of recorded values.
        #[inline]
        pub fn total(&self) -> u64 {
            self.total
        }

        /// Largest recorded value.
        #[inline]
        pub fn max(&self) -> u64 {
            self.max
        }

        /// Mean of the recorded values (0.0 when empty).
        pub fn mean(&self) -> f64 {
            if self.count == 0 {
                0.0
            } else {
                self.total as f64 / self.count as f64
            }
        }

        /// Bucket occupancies, by value (all zero under `obs-off`).
        pub fn buckets(&self) -> [u64; HIST_BUCKETS] {
            self.buckets
        }

        /// Fold another histogram in (exact: buckets align by layout).
        pub fn merge(&mut self, other: &LogHist) {
            for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
                *b += o;
            }
            self.count += other.count;
            self.total += other.total;
            self.max = self.max.max(other.max);
        }
    }

    /// Accumulated wall time (monotonic clock) of a named code region.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Stopwatch {
        ns: u64,
    }

    impl Stopwatch {
        /// A stopwatch with nothing accumulated.
        pub const fn new() -> Self {
            Stopwatch { ns: 0 }
        }

        /// Add raw nanoseconds (e.g. from a detached [`Timer`]).
        #[inline(always)]
        pub fn add_ns(&mut self, ns: u64) {
            self.ns += ns;
        }

        /// Accumulated nanoseconds (0 forever under `obs-off`).
        #[inline]
        pub fn ns(&self) -> u64 {
            self.ns
        }

        /// Enter a span: the returned guard adds its elapsed time to the
        /// stopwatch on drop.
        #[inline]
        pub fn span(&mut self) -> Span<'_> {
            Span { sw: self, timer: Timer::start() }
        }

        /// Run `f` inside a span of this stopwatch.
        #[inline]
        pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
            let _span = self.span();
            f()
        }
    }

    /// RAII span guard; see [`Stopwatch::span`].
    #[derive(Debug)]
    pub struct Span<'a> {
        sw: &'a mut Stopwatch,
        timer: Timer,
    }

    impl Drop for Span<'_> {
        fn drop(&mut self) {
            self.sw.add_ns(self.timer.elapsed_ns());
        }
    }

    /// One-shot monotonic timer.
    #[derive(Debug, Clone, Copy)]
    pub struct Timer {
        start: Instant,
    }

    impl Timer {
        /// Start timing now.
        #[inline]
        pub fn start() -> Self {
            Timer { start: Instant::now() }
        }

        /// Nanoseconds since [`Timer::start`], saturated to `u64`
        /// (0 forever under `obs-off`).
        #[inline]
        pub fn elapsed_ns(&self) -> u64 {
            let nanos = self.start.elapsed().as_nanos();
            u64::try_from(nanos).unwrap_or(u64::MAX)
        }
    }
}

#[cfg(feature = "obs-off")]
mod off {
    use super::HIST_BUCKETS;
    use core::marker::PhantomData;

    /// No-op [`Counter`](super::live) mirror (`obs-off`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Counter;

    impl Counter {
        pub const fn new() -> Self {
            Counter
        }
        #[inline(always)]
        pub fn inc(&mut self) {}
        #[inline(always)]
        pub fn add(&mut self, _n: u64) {}
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
        #[inline(always)]
        pub fn reset(&mut self) {}
    }

    /// No-op `AtomicCounter` mirror (`obs-off`).
    #[derive(Debug, Default)]
    pub struct AtomicCounter;

    impl AtomicCounter {
        pub const fn new() -> Self {
            AtomicCounter
        }
        #[inline(always)]
        pub fn inc(&self) {}
        #[inline(always)]
        pub fn add(&self, _n: u64) {}
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// No-op `LogHist` mirror (`obs-off`).
    #[derive(Debug, Clone, Default)]
    pub struct LogHist;

    impl LogHist {
        pub const fn new() -> Self {
            LogHist
        }
        #[inline(always)]
        pub fn record(&mut self, _v: u64) {}
        #[inline(always)]
        pub fn count(&self) -> u64 {
            0
        }
        #[inline(always)]
        pub fn total(&self) -> u64 {
            0
        }
        #[inline(always)]
        pub fn max(&self) -> u64 {
            0
        }
        #[inline(always)]
        pub fn mean(&self) -> f64 {
            0.0
        }
        #[inline(always)]
        pub fn buckets(&self) -> [u64; HIST_BUCKETS] {
            [0; HIST_BUCKETS]
        }
        #[inline(always)]
        pub fn merge(&mut self, _other: &LogHist) {}
    }

    /// No-op `Stopwatch` mirror (`obs-off`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Stopwatch;

    impl Stopwatch {
        pub const fn new() -> Self {
            Stopwatch
        }
        #[inline(always)]
        pub fn add_ns(&mut self, _ns: u64) {}
        #[inline(always)]
        pub fn ns(&self) -> u64 {
            0
        }
        #[inline(always)]
        pub fn span(&mut self) -> Span<'_> {
            Span { _sw: PhantomData }
        }
        #[inline(always)]
        pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
            f()
        }
    }

    /// No-op `Span` mirror (`obs-off`).
    #[derive(Debug)]
    pub struct Span<'a> {
        _sw: PhantomData<&'a mut Stopwatch>,
    }

    /// No-op `Timer` mirror (`obs-off`).
    #[derive(Debug, Clone, Copy)]
    pub struct Timer;

    impl Timer {
        #[inline(always)]
        pub fn start() -> Self {
            Timer
        }
        #[inline(always)]
        pub fn elapsed_ns(&self) -> u64 {
            0
        }
    }
}

#[cfg(not(feature = "obs-off"))]
pub use live::{AtomicCounter, Counter, LogHist, Span, Stopwatch, Timer};
#[cfg(feature = "obs-off")]
pub use off::{AtomicCounter, Counter, LogHist, Span, Stopwatch, Timer};

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.inc();
        c.add(40);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn atomic_counter_counts_across_threads() {
        let c = AtomicCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        c.add(5);
        assert_eq!(c.get(), 4005);
    }

    #[test]
    fn hist_bucket_boundaries() {
        // 0 -> bucket 0; 1 -> bucket 1; [2,4) -> bucket 2; ...
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_lo(1), 1);
        assert_eq!(bucket_lo(11), 1024);
    }

    #[test]
    fn hist_records_and_merges() {
        let mut a = LogHist::new();
        a.record(0);
        a.record(3);
        a.record(1024);
        assert_eq!(a.count(), 3);
        assert_eq!(a.total(), 1027);
        assert_eq!(a.max(), 1024);
        let b = a.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[2], 1);
        assert_eq!(b[11], 1);

        let mut m = LogHist::new();
        m.record(3);
        m.merge(&a);
        assert_eq!(m.count(), 4);
        assert_eq!(m.total(), 1030);
        assert_eq!(m.buckets()[2], 2);
        assert!((a.mean() - 1027.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stopwatch_spans_accumulate() {
        let mut sw = Stopwatch::new();
        sw.time(|| std::thread::sleep(std::time::Duration::from_millis(2)));
        {
            let _g = sw.span();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // Two ~2 ms sleeps: at least 4 ms accumulated.
        assert!(sw.ns() >= 4_000_000, "accumulated only {} ns", sw.ns());
        let t = Timer::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(t.elapsed_ns() >= 1_000_000);
    }
}
