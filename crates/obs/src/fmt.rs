//! Human-readable formatting for end-of-run summary tables.

/// Format a count with an SI suffix: `1234` → `"1.23k"`, `7` → `"7"`.
pub fn human_count(n: u64) -> String {
    const STEPS: [(u64, &str); 4] =
        [(1_000_000_000_000, "T"), (1_000_000_000, "G"), (1_000_000, "M"), (1_000, "k")];
    for (div, suffix) in STEPS {
        if n >= div {
            return format!("{:.2}{}", n as f64 / div as f64, suffix);
        }
    }
    n.to_string()
}

/// Format nanoseconds at a readable scale: `1500` → `"1.50us"`.
pub fn human_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(human_count(7), "7");
        assert_eq!(human_count(999), "999");
        assert_eq!(human_count(1234), "1.23k");
        assert_eq!(human_count(5_000_000), "5.00M");
        assert_eq!(human_count(2_500_000_000), "2.50G");
        assert_eq!(human_count(3_100_000_000_000), "3.10T");
    }

    #[test]
    fn times() {
        assert_eq!(human_ns(12), "12ns");
        assert_eq!(human_ns(1500), "1.50us");
        assert_eq!(human_ns(2_500_000), "2.50ms");
        assert_eq!(human_ns(3_200_000_000), "3.20s");
    }
}
