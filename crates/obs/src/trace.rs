//! Timestamped hierarchical span-tree recorder with Chrome trace-event
//! export — live and `obs-off` variants.
//!
//! Unlike [`Stopwatch`](crate::Stopwatch) (which only *accumulates* wall
//! time), this module records every begin/end edge with a timestamp and
//! a thread id, so a whole campaign can be replayed as a span tree in
//! `chrome://tracing` / Perfetto. The design keeps the idle cost to one
//! relaxed atomic load per span site:
//!
//! * Capture is globally armed by [`start_capture`]; when disarmed,
//!   [`span`] returns an inert guard without touching the clock.
//! * Each thread buffers events in a thread-local ring of
//!   [`THREAD_RING`] slots; a full ring (or the thread exiting) flushes
//!   the batch into the global store under one mutex acquisition, so
//!   the hot path never contends on a lock.
//! * The global store is bounded by [`MAX_EVENTS`]; overflow events are
//!   counted, not silently discarded ([`dropped_events`]).
//! * Span names are `&'static str`, so recording an edge is two word
//!   stores plus a monotonic clock read — no allocation.
//!
//! [`stop_capture`] drains the caller's ring and returns everything
//! flushed so far; [`chrome_trace_json`] serializes the events as Chrome
//! trace-event JSON (`ph: "B"/"E"` pairs, microsecond timestamps). Both
//! the event type and the serializer are always compiled — under
//! `obs-off` the recorder itself is a no-op ZST and captures nothing,
//! but `--trace-out` plumbing keeps compiling (it just writes an empty
//! trace).
//!
//! Threads that are still alive and have not filled their ring when
//! [`stop_capture`] runs contribute nothing; the campaign drivers stop
//! capture only after their scoped worker pools have exited, at which
//! point every worker's ring has been flushed by its TLS destructor.

/// One begin or end edge of a named span.
///
/// Timestamps are nanoseconds since the capture anchor (the first
/// [`start_capture`] of the process), so events from all threads share
/// one monotonic timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span-site name, e.g. `"tvla.block"` or `"sched.sweep"`.
    pub name: &'static str,
    /// Sequential recorder-assigned thread id (1 = first recording thread).
    pub tid: u32,
    /// Nanoseconds since the capture anchor.
    pub ts_ns: u64,
    /// `true` for the begin edge, `false` for the end edge.
    pub begin: bool,
}

/// Thread-local ring capacity (events) before a flush to the global store.
pub const THREAD_RING: usize = 4096;

/// Global store capacity; events beyond this are counted as dropped.
pub const MAX_EVENTS: usize = 1 << 22;

#[cfg(not(feature = "obs-off"))]
mod live {
    use super::{SpanEvent, MAX_EVENTS, THREAD_RING};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    static CAPTURING: AtomicBool = AtomicBool::new(false);
    static DROPPED: AtomicU64 = AtomicU64::new(0);
    static NEXT_TID: AtomicU32 = AtomicU32::new(1);

    fn anchor() -> Instant {
        static ANCHOR: OnceLock<Instant> = OnceLock::new();
        *ANCHOR.get_or_init(Instant::now)
    }

    fn store() -> &'static Mutex<Vec<SpanEvent>> {
        static STORE: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
        STORE.get_or_init(|| Mutex::new(Vec::new()))
    }

    /// Append a thread's batch to the global store, respecting the
    /// [`MAX_EVENTS`] bound.
    fn flush_batch(events: &mut Vec<SpanEvent>) {
        if events.is_empty() {
            return;
        }
        let mut store = store().lock().unwrap();
        let room = MAX_EVENTS.saturating_sub(store.len());
        let take = events.len().min(room);
        store.extend_from_slice(&events[..take]);
        let dropped = (events.len() - take) as u64;
        if dropped > 0 {
            DROPPED.fetch_add(dropped, Ordering::Relaxed);
        }
        events.clear();
    }

    struct ThreadRing {
        tid: u32,
        events: Vec<SpanEvent>,
    }

    impl ThreadRing {
        fn new() -> Self {
            ThreadRing {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                events: Vec::with_capacity(THREAD_RING),
            }
        }
    }

    impl Drop for ThreadRing {
        fn drop(&mut self) {
            flush_batch(&mut self.events);
        }
    }

    thread_local! {
        static RING: RefCell<ThreadRing> = RefCell::new(ThreadRing::new());
    }

    #[inline]
    fn record(name: &'static str, begin: bool) {
        let ts_ns = u64::try_from(anchor().elapsed().as_nanos()).unwrap_or(u64::MAX);
        RING.with(|ring| {
            let mut ring = ring.borrow_mut();
            let tid = ring.tid;
            ring.events.push(SpanEvent { name, tid, ts_ns, begin });
            if ring.events.len() >= THREAD_RING {
                flush_batch(&mut ring.events);
            }
        });
    }

    /// RAII guard recording a begin edge now and the matching end edge on
    /// drop. Inert (records nothing) when capture is disarmed at entry.
    #[derive(Debug)]
    pub struct TraceSpan {
        name: &'static str,
        armed: bool,
    }

    impl Drop for TraceSpan {
        fn drop(&mut self) {
            // Re-check so a capture stopped mid-span cannot leak an
            // unmatched end edge into the next capture.
            if self.armed && CAPTURING.load(Ordering::Relaxed) {
                record(self.name, false);
            }
        }
    }

    /// Open a span named `name`. One relaxed load when capture is off.
    #[inline]
    pub fn span(name: &'static str) -> TraceSpan {
        let armed = CAPTURING.load(Ordering::Relaxed);
        if armed {
            record(name, true);
        }
        TraceSpan { name, armed }
    }

    /// `true` while span edges are being recorded.
    #[inline]
    pub fn capturing() -> bool {
        CAPTURING.load(Ordering::Relaxed)
    }

    /// Arm capture, clearing any events left from a previous capture.
    pub fn start_capture() {
        let _ = anchor();
        {
            let mut store = store().lock().unwrap();
            store.clear();
        }
        DROPPED.store(0, Ordering::Relaxed);
        CAPTURING.store(true, Ordering::SeqCst);
    }

    /// Disarm capture and return every event flushed to the global store
    /// (plus the calling thread's ring), ordered by flush batch.
    pub fn stop_capture() -> Vec<SpanEvent> {
        CAPTURING.store(false, Ordering::SeqCst);
        RING.with(|ring| flush_batch(&mut ring.borrow_mut().events));
        let mut store = store().lock().unwrap();
        std::mem::take(&mut *store)
    }

    /// Events discarded because the global store hit [`MAX_EVENTS`]
    /// during the current/last capture.
    pub fn dropped_events() -> u64 {
        DROPPED.load(Ordering::Relaxed)
    }
}

#[cfg(feature = "obs-off")]
mod off {
    use super::SpanEvent;

    /// No-op `TraceSpan` mirror (`obs-off`). Deliberately not `Copy`:
    /// the live guard has a `Drop` impl, and callers that end a span
    /// early with `drop(span)` must compile warning-free either way.
    #[derive(Debug)]
    pub struct TraceSpan;

    /// No-op [`span`](super::span) mirror (`obs-off`).
    #[inline(always)]
    pub fn span(_name: &'static str) -> TraceSpan {
        TraceSpan
    }

    /// Always `false` under `obs-off`.
    #[inline(always)]
    pub fn capturing() -> bool {
        false
    }

    /// No-op under `obs-off`.
    #[inline(always)]
    pub fn start_capture() {}

    /// Always empty under `obs-off`.
    #[inline(always)]
    pub fn stop_capture() -> Vec<SpanEvent> {
        Vec::new()
    }

    /// Always 0 under `obs-off`.
    #[inline(always)]
    pub fn dropped_events() -> u64 {
        0
    }
}

#[cfg(not(feature = "obs-off"))]
pub use live::{capturing, dropped_events, span, start_capture, stop_capture, TraceSpan};
#[cfg(feature = "obs-off")]
pub use off::{capturing, dropped_events, span, start_capture, stop_capture, TraceSpan};

/// Serialize recorded events as Chrome trace-event JSON (the
/// `{"traceEvents": [...]}` object form; load in `chrome://tracing` or
/// <https://ui.perfetto.dev>). Begin/end edges become `ph: "B"/"E"`
/// records; timestamps are microseconds with nanosecond decimals.
///
/// Always compiled so `--trace-out` plumbing works under `obs-off` too
/// (the file then just holds an empty `traceEvents` array).
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 80);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        crate::escape_into(e.name, &mut out);
        out.push_str("\",\"cat\":\"glitchmask\",\"ph\":\"");
        out.push(if e.begin { 'B' } else { 'E' });
        out.push_str("\",\"pid\":1,\"tid\":");
        out.push_str(&e.tid.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&format!("{}.{:03}", e.ts_ns / 1000, e.ts_ns % 1000));
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_shape() {
        let events = [
            SpanEvent { name: "tvla.block", tid: 1, ts_ns: 1_500, begin: true },
            SpanEvent { name: "tvla.block", tid: 1, ts_ns: 2_750_250, begin: false },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"tvla.block\",\"cat\":\"glitchmask\",\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":2750.250"));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn chrome_json_empty_capture() {
        assert_eq!(chrome_trace_json(&[]), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n");
    }

    #[cfg(not(feature = "obs-off"))]
    mod live {
        use super::*;
        use std::sync::Mutex;

        /// Capture state is process-global, so tests that arm it must
        /// not interleave.
        fn capture_lock() -> std::sync::MutexGuard<'static, ()> {
            static LOCK: Mutex<()> = Mutex::new(());
            LOCK.lock().unwrap_or_else(|e| e.into_inner())
        }

        #[test]
        fn disarmed_spans_record_nothing() {
            let _guard = capture_lock();
            {
                let _s = span("idle.site");
            }
            start_capture();
            let events = stop_capture();
            assert!(
                events.iter().all(|e| e.name != "idle.site"),
                "disarmed span leaked into the next capture: {events:?}"
            );
        }

        #[test]
        fn spans_nest_and_balance() {
            let _guard = capture_lock();
            start_capture();
            {
                let _outer = span("test.outer");
                let _inner = span("test.inner");
            }
            let events = stop_capture();
            let mine: Vec<_> = events.iter().filter(|e| e.name.starts_with("test.")).collect();
            assert_eq!(mine.len(), 4);
            // Strict LIFO: outer-B, inner-B, inner-E, outer-E.
            assert_eq!(mine[0].name, "test.outer");
            assert!(mine[0].begin);
            assert_eq!(mine[1].name, "test.inner");
            assert!(mine[1].begin);
            assert_eq!(mine[2].name, "test.inner");
            assert!(!mine[2].begin);
            assert_eq!(mine[3].name, "test.outer");
            assert!(!mine[3].begin);
            // Timestamps are monotone within the thread.
            for w in mine.windows(2) {
                assert!(w[0].ts_ns <= w[1].ts_ns);
            }
            assert_eq!(dropped_events(), 0);
        }

        #[test]
        fn worker_thread_rings_flush_on_exit() {
            let _guard = capture_lock();
            start_capture();
            std::thread::scope(|s| {
                for _ in 0..3 {
                    s.spawn(|| {
                        let _s = span("test.worker");
                    });
                }
            });
            let events = stop_capture();
            let workers: Vec<_> = events.iter().filter(|e| e.name == "test.worker").collect();
            assert_eq!(workers.len(), 6, "3 workers x B/E pairs: {events:?}");
            let tids: std::collections::BTreeSet<u32> = workers.iter().map(|e| e.tid).collect();
            assert_eq!(tids.len(), 3, "each worker gets its own tid");
        }

        #[test]
        fn restart_clears_previous_capture() {
            let _guard = capture_lock();
            start_capture();
            {
                let _s = span("test.stale");
            }
            let first = stop_capture();
            assert!(first.iter().any(|e| e.name == "test.stale"));
            start_capture();
            let second = stop_capture();
            assert!(second.iter().all(|e| e.name != "test.stale"));
        }
    }

    #[cfg(feature = "obs-off")]
    mod off {
        use super::*;

        /// The obs-off guarantee extends to the span recorder: the guard
        /// is a ZST and capture never arms.
        #[test]
        fn trace_span_is_zero_sized() {
            assert_eq!(core::mem::size_of::<TraceSpan>(), 0);
        }

        #[test]
        fn capture_is_inert() {
            start_capture();
            assert!(!capturing());
            {
                let _s = span("off.site");
            }
            assert!(stop_capture().is_empty());
            assert_eq!(dropped_events(), 0);
        }
    }
}
