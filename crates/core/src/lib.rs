//! # gm-core
//!
//! The paper's contribution: low-cost first-order secure Boolean masking
//! for glitchy hardware, without fresh randomness in the AND gadget.
//!
//! * [`share`] — two-share Boolean masking of bits and words.
//! * [`rng`] — the masking/refresh randomness source, with the "PRNG off"
//!   switch used for the paper's sanity-check experiments.
//! * [`gadgets`] — software models *and* netlist generators for
//!   `secAND2` (Eq. 2), `secAND2-FF` (Fig. 2), `secAND2-PD` (Fig. 3),
//!   masked XOR/NOT, the refresh gadget (Fig. 7), and the baselines the
//!   paper compares against: Trichina's AND (Eq. 1), DOM-indep, DOM-dep,
//!   and a 3-share TI AND.
//! * [`schedule`] — input arrival sequences (Table I) and DelayUnit
//!   schedules (Table II).
//! * [`compose`] — product trees (Fig. 4), product chains (Fig. 6), and
//!   the shared-input-register form (Fig. 5).
//! * [`analysis`] — share-dependency tracking (when must one refresh,
//!   §III-C), exhaustive first-order probing checks, and the symbolic
//!   glitch-extended model that predicts Table I.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bitslice;
pub mod compose;
pub mod gadgets;
pub mod rng;
pub mod schedule;
pub mod share;

pub use bitslice::LaneBit;
pub use rng::MaskRng;
pub use share::{MaskedBit, MaskedWord};
