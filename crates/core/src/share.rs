//! Two-share Boolean masking of bits and words.
//!
//! First-order Boolean masking splits every sensitive value `x` into
//! `x = x₀ ⊕ x₁` with `x₀` uniform. Linear operations act share-wise;
//! non-linear operations need the gadgets in [`crate::gadgets`].

use crate::rng::MaskRng;

/// A sensitive bit split into two Boolean shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MaskedBit {
    /// Share 0 (the uniformly random mask under fresh sharing).
    pub s0: bool,
    /// Share 1 (`value ⊕ s0`).
    pub s1: bool,
}

impl MaskedBit {
    /// Freshly share `value` with a random mask.
    pub fn mask(value: bool, rng: &mut MaskRng) -> Self {
        let m = rng.bit();
        MaskedBit { s0: m, s1: value ^ m }
    }

    /// The (insecure to compute on a device!) unshared value.
    pub fn unmask(self) -> bool {
        self.s0 ^ self.s1
    }

    /// A trivially-shared constant `(c, 0)` — fine for public values.
    pub fn constant(c: bool) -> Self {
        MaskedBit { s0: c, s1: false }
    }

    /// Share-wise XOR (linear, always safe).
    pub fn xor(self, other: MaskedBit) -> Self {
        MaskedBit { s0: self.s0 ^ other.s0, s1: self.s1 ^ other.s1 }
    }

    /// XOR with a public constant (flips one share).
    pub fn xor_const(self, c: bool) -> Self {
        MaskedBit { s0: self.s0 ^ c, s1: self.s1 }
    }

    /// Masked NOT (flips one share).
    // Named after the gate, not the trait; `MaskedBit` deliberately does
    // not implement `std::ops::Not` (no operator sugar on shares).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        self.xor_const(true)
    }

    /// Re-mask with a fresh random bit (the refresh gadget of Fig. 7).
    pub fn refresh(self, rng: &mut MaskRng) -> Self {
        self.refresh_with(rng.bit())
    }

    /// Re-mask with an explicitly supplied fresh bit (for designs that
    /// budget and recycle their randomness, like the paper's 14-bit
    /// per-round pool).
    pub fn refresh_with(self, m: bool) -> Self {
        MaskedBit { s0: self.s0 ^ m, s1: self.s1 ^ m }
    }
}

/// A `width`-bit word split into two shares, stored bitwise in `u64`s.
/// Linear DES operations (permutations, expansions, XORs) act on whole
/// words per share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskedWord {
    /// Share 0.
    pub s0: u64,
    /// Share 1.
    pub s1: u64,
    /// Number of significant low bits.
    pub width: u32,
}

impl MaskedWord {
    /// Freshly share `value` (low `width` bits) with a random mask.
    pub fn mask(value: u64, width: u32, rng: &mut MaskRng) -> Self {
        assert!(width <= 64, "width at most 64");
        let m = rng.bits(width);
        MaskedWord { s0: m, s1: (value ^ m) & mask_of(width), width }
    }

    /// A trivially-shared public constant.
    pub fn constant(value: u64, width: u32) -> Self {
        assert!(width <= 64, "width at most 64");
        MaskedWord { s0: value & mask_of(width), s1: 0, width }
    }

    /// The unshared value.
    pub fn unmask(self) -> u64 {
        (self.s0 ^ self.s1) & mask_of(self.width)
    }

    /// Share-wise XOR.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn xor(self, other: MaskedWord) -> Self {
        assert_eq!(self.width, other.width, "width mismatch");
        MaskedWord { s0: self.s0 ^ other.s0, s1: self.s1 ^ other.s1, width: self.width }
    }

    /// Extract bit `i` as a [`MaskedBit`].
    pub fn bit(self, i: u32) -> MaskedBit {
        assert!(i < self.width, "bit index {i} out of width {}", self.width);
        MaskedBit { s0: (self.s0 >> i) & 1 == 1, s1: (self.s1 >> i) & 1 == 1 }
    }

    /// Build a word from per-bit shares, bit 0 first.
    pub fn from_bits(bits: &[MaskedBit]) -> Self {
        assert!(bits.len() <= 64, "at most 64 bits");
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        for (i, b) in bits.iter().enumerate() {
            s0 |= (b.s0 as u64) << i;
            s1 |= (b.s1 as u64) << i;
        }
        MaskedWord { s0, s1, width: bits.len() as u32 }
    }

    /// Apply the same bit permutation to both shares:
    /// `out[i] = in[table[i]]` (0-based positions).
    pub fn permute(self, table: &[u32], out_width: u32) -> Self {
        assert_eq!(table.len() as u32, out_width, "table length must equal output width");
        let pick = |s: u64| -> u64 {
            table.iter().enumerate().fold(0u64, |acc, (i, &src)| acc | (((s >> src) & 1) << i))
        };
        MaskedWord { s0: pick(self.s0), s1: pick(self.s1), width: out_width }
    }

    /// Re-mask every bit with fresh randomness.
    pub fn refresh(self, rng: &mut MaskRng) -> Self {
        let m = rng.bits(self.width);
        MaskedWord { s0: self.s0 ^ m, s1: self.s1 ^ m, width: self.width }
    }
}

#[inline]
fn mask_of(width: u32) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_unmask_roundtrip() {
        let mut rng = MaskRng::new(3);
        for v in [false, true] {
            for _ in 0..32 {
                assert_eq!(MaskedBit::mask(v, &mut rng).unmask(), v);
            }
        }
    }

    #[test]
    fn shares_are_balanced() {
        let mut rng = MaskRng::new(4);
        let ones = (0..10_000).filter(|_| MaskedBit::mask(true, &mut rng).s0).count();
        assert!((4_500..5_500).contains(&ones), "share 0 must be uniform: {ones}");
    }

    #[test]
    fn disabled_rng_degenerates() {
        let mut rng = MaskRng::disabled();
        let b = MaskedBit::mask(true, &mut rng);
        assert_eq!((b.s0, b.s1), (false, true), "PRNG off => (0, value)");
    }

    #[test]
    fn xor_and_not() {
        let mut rng = MaskRng::new(5);
        for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
            let mx = MaskedBit::mask(x, &mut rng);
            let my = MaskedBit::mask(y, &mut rng);
            assert_eq!(mx.xor(my).unmask(), x ^ y);
            assert_eq!(mx.not().unmask(), !x);
            assert_eq!(mx.xor_const(true).unmask(), !x);
        }
    }

    #[test]
    fn refresh_preserves_value_changes_shares() {
        let mut rng = MaskRng::new(6);
        let b = MaskedBit::mask(true, &mut rng);
        let mut changed = false;
        let mut cur = b;
        for _ in 0..64 {
            cur = cur.refresh(&mut rng);
            assert!(cur.unmask());
            changed |= cur.s0 != b.s0;
        }
        assert!(changed, "refresh must actually re-randomise");
    }

    #[test]
    fn word_roundtrip_and_bits() {
        let mut rng = MaskRng::new(7);
        let w = MaskedWord::mask(0b101101, 6, &mut rng);
        assert_eq!(w.unmask(), 0b101101);
        assert!(w.bit(0).unmask());
        assert!(!w.bit(1).unmask());
        assert!(w.bit(5).unmask());
        let bits: Vec<MaskedBit> = (0..6).map(|i| w.bit(i)).collect();
        assert_eq!(MaskedWord::from_bits(&bits).unmask(), 0b101101);
    }

    #[test]
    fn word_permute() {
        let w = MaskedWord::constant(0b0110, 4);
        // Reverse the bits.
        let p = w.permute(&[3, 2, 1, 0], 4);
        assert_eq!(p.unmask(), 0b0110u64.reverse_bits() >> 60);
    }

    #[test]
    fn word_xor_and_refresh() {
        let mut rng = MaskRng::new(8);
        let a = MaskedWord::mask(0xF0F0, 16, &mut rng);
        let b = MaskedWord::mask(0x1234, 16, &mut rng);
        assert_eq!(a.xor(b).unmask(), 0xF0F0 ^ 0x1234);
        assert_eq!(a.refresh(&mut rng).unmask(), 0xF0F0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let a = MaskedWord::constant(1, 4);
        let b = MaskedWord::constant(1, 5);
        let _ = a.xor(b);
    }
}
