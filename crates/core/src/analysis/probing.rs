//! Exhaustive stationary first-order probing check.
//!
//! For a gadget netlist whose inputs are the shares of a few masked
//! variables (plus optional fresh-randomness nets), enumerate *every*
//! combination of unshared values, masks, and randomness, and verify that
//! each wire's probability of being 1 is identical across all unshared
//! value assignments. With exhaustive enumeration the check is exact:
//! any dependence, however slight, is caught.
//!
//! This is the *stationary* (glitch-free) notion — `secAND2` passes it,
//! the classical masked AND fails it. Glitch-extended behaviour is
//! covered by [`crate::analysis::glitch_model`].

use gm_netlist::{Evaluator, NetId, Netlist};

/// A masked variable: its two share nets.
pub type SharePair = (NetId, NetId);

/// Result of a probing check.
#[derive(Debug, Clone)]
pub struct ProbeReport {
    /// True when every net passed.
    pub secure: bool,
    /// Nets whose distribution depends on the unshared inputs, with the
    /// largest probability gap observed.
    pub violations: Vec<(NetId, f64)>,
}

/// Run the exhaustive check.
///
/// * `vars` — the masked input variables (share-net pairs);
/// * `fresh` — uniformly-random auxiliary nets (refresh masks etc.).
///
/// # Panics
///
/// Panics when the netlist fails validation or has more than 16 total
/// free bits to enumerate (`2·vars + fresh`), or when any net in `vars`/
/// `fresh` is not a primary input.
pub fn probe_check(n: &Netlist, vars: &[SharePair], fresh: &[NetId]) -> ProbeReport {
    n.validate().expect("netlist must validate before probing");
    let v = vars.len();
    let f = fresh.len();
    assert!(v + v + f <= 16, "exhaustive enumeration limited to 16 free bits");

    let mut ev = Evaluator::new(n).expect("validated netlist");
    let num_nets = n.num_nets();
    // ones[value_assignment][net], total[value_assignment]
    let num_vals = 1usize << v;
    let mut ones = vec![vec![0u32; num_nets]; num_vals];
    let mut totals = vec![0u32; num_vals];

    // Enumerate: unshared values (v bits) × masks (v bits) × fresh (f bits).
    for vals in 0..num_vals {
        for masks in 0..(1usize << v) {
            for fr in 0..(1usize << f) {
                for (i, &(s0, s1)) in vars.iter().enumerate() {
                    let value = (vals >> i) & 1 == 1;
                    let m = (masks >> i) & 1 == 1;
                    ev.set_input(s0, m);
                    ev.set_input(s1, value ^ m);
                }
                for (i, &net) in fresh.iter().enumerate() {
                    ev.set_input(net, (fr >> i) & 1 == 1);
                }
                ev.settle(n);
                totals[vals] += 1;
                for (net, one) in ones[vals].iter_mut().enumerate() {
                    *one += ev.value(NetId(net as u32)) as u32;
                }
            }
        }
    }

    let mut violations = Vec::new();
    // `net` strides the *inner* dimension of `ones` (a transposed walk);
    // no iterator form is clearer here.
    #[allow(clippy::needless_range_loop)]
    for net in 0..num_nets {
        let probs: Vec<f64> =
            (0..num_vals).map(|v| ones[v][net] as f64 / totals[v] as f64).collect();
        let max = probs.iter().cloned().fold(f64::MIN, f64::max);
        let min = probs.iter().cloned().fold(f64::MAX, f64::min);
        if max - min > 1e-12 {
            violations.push((NetId(net as u32), max - min));
        }
    }
    ProbeReport { secure: violations.is_empty(), violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::sec_and2::{build_insecure_and2, build_sec_and2};
    use crate::gadgets::trichina::build_trichina_and;
    use crate::gadgets::AndInputs;

    fn two_var_fixture(
        build: impl FnOnce(&mut Netlist, AndInputs) -> crate::gadgets::AndOutputs,
    ) -> (Netlist, Vec<SharePair>) {
        let mut n = Netlist::new("g");
        let io = AndInputs {
            x0: n.input("x0"),
            x1: n.input("x1"),
            y0: n.input("y0"),
            y1: n.input("y1"),
        };
        let out = build(&mut n, io);
        n.output("z0", out.z0);
        n.output("z1", out.z1);
        (n, vec![(io.x0, io.x1), (io.y0, io.y1)])
    }

    /// secAND2 is first-order probing secure in the stationary model —
    /// the property Biryukov et al. prove, checked here exhaustively.
    #[test]
    fn sec_and2_passes() {
        let (n, vars) = two_var_fixture(build_sec_and2);
        let r = probe_check(&n, &vars, &[]);
        assert!(r.secure, "violations: {:?}", r.violations);
    }

    /// The classical masked AND leaks: its XOR output equals x0·y.
    #[test]
    fn insecure_and2_fails() {
        let (n, vars) = two_var_fixture(build_insecure_and2);
        let r = probe_check(&n, &vars, &[]);
        assert!(!r.secure);
        // The worst wire should show a large gap (0.5): z0 = x0·y is 0
        // with certainty when y = 0.
        let worst = r.violations.iter().map(|(_, g)| *g).fold(0.0f64, f64::max);
        assert!(worst >= 0.5 - 1e-9, "worst gap {worst}");
    }

    /// Trichina's gadget passes the stationary check when the fresh bit
    /// is uniform (its insecurity is purely an evaluation-order/glitch
    /// phenomenon).
    #[test]
    fn trichina_passes_stationary() {
        let mut n = Netlist::new("t");
        let io = AndInputs {
            x0: n.input("x0"),
            x1: n.input("x1"),
            y0: n.input("y0"),
            y1: n.input("y1"),
        };
        let r = n.input("r");
        let out = build_trichina_and(&mut n, io, r);
        n.output("z0", out.z0);
        n.output("z1", out.z1);
        let rep = probe_check(&n, &[(io.x0, io.x1), (io.y0, io.y1)], &[r]);
        // The final z0 is fine, but the *intermediate* XOR chain exposes
        // partial sums like r ⊕ x0y0 ⊕ x0y1 = r ⊕ x0·y … which are masked
        // by r. All wires pass stationarily.
        assert!(rep.secure, "violations: {:?}", rep.violations);
    }

    #[test]
    #[should_panic(expected = "16 free bits")]
    fn too_many_vars_panics() {
        let mut n = Netlist::new("t");
        let pairs: Vec<SharePair> =
            (0..9).map(|i| (n.input(format!("a{i}")), n.input(format!("b{i}")))).collect();
        let x = n.xor2(pairs[0].0, pairs[1].0);
        n.output("x", x);
        let _ = probe_check(&n, &pairs, &[]);
    }
}
