//! Exhaustive *uniformity and sharing-independence* analysis of
//! masked-gadget outputs.
//!
//! Two properties matter for composition:
//!
//! * **marginal uniformity** — over fresh input sharings, every valid
//!   output share vector of the computed value is equally likely;
//! * **independence from the input sharing** — conditioning on the
//!   concrete input share vector does not change the output-share
//!   distribution.
//!
//! Interestingly, `secAND2` *keeps* the first property but completely
//! loses the second: with no fresh randomness, its output shares are a
//! deterministic function of the input shares. That conditional
//! determinism is exactly what makes recombining dependent terms unsafe
//! (§III-C) and what one fresh refresh bit repairs. This module computes
//! both properties exactly by enumeration.

use crate::share::MaskedBit;
use std::collections::BTreeMap;

/// Exact distribution report for one masked-bit output.
#[derive(Debug, Clone)]
pub struct UniformityReport {
    /// For each unshared input assignment: marginal share-vector
    /// histogram `(z0, z1) -> count`.
    pub histograms: Vec<BTreeMap<(bool, bool), u64>>,
    /// Worst deviation of the *marginal* from uniform, in `[0, 1]`.
    pub marginal_bias: f64,
    /// Worst total-variation distance between any *conditional*
    /// distribution (given a concrete input sharing) and the marginal —
    /// 0 means the output sharing is independent of the input sharing.
    pub sharing_dependence: f64,
}

impl UniformityReport {
    /// True when the marginal output-share distribution is uniform over
    /// the sharings of each value.
    pub fn is_uniform(&self) -> bool {
        self.marginal_bias < 1e-12
    }

    /// True when the output sharing is independent of the input sharing
    /// (the property compositions without refresh rely on).
    pub fn is_input_independent(&self) -> bool {
        self.sharing_dependence < 1e-12
    }
}

/// Exhaustively check the output sharing of a 2-input masked-bit gadget.
///
/// `gadget(x, y, fresh)` computes the masked output from two masked
/// inputs plus `fresh_bits` auxiliary uniform bits (packed in a `u32`).
pub fn check_gadget2(
    gadget: impl Fn(MaskedBit, MaskedBit, u32) -> MaskedBit,
    fresh_bits: u32,
) -> UniformityReport {
    let mut histograms = Vec::with_capacity(4);
    let mut marginal_bias = 0.0f64;
    let mut sharing_dependence = 0.0f64;
    for vals in 0..4u8 {
        let (xv, yv) = (vals & 1 == 1, vals & 2 == 2);
        let mut marginal: BTreeMap<(bool, bool), u64> = BTreeMap::new();
        let mut conditionals: Vec<BTreeMap<(bool, bool), u64>> = Vec::new();
        let mut total = 0u64;
        let per_sharing = 1u64 << fresh_bits;
        for masks in 0..4u8 {
            let x = MaskedBit { s0: masks & 1 == 1, s1: xv ^ (masks & 1 == 1) };
            let y = MaskedBit { s0: masks & 2 == 2, s1: yv ^ (masks & 2 == 2) };
            let mut cond: BTreeMap<(bool, bool), u64> = BTreeMap::new();
            for fresh in 0..(1u32 << fresh_bits) {
                let z = gadget(x, y, fresh);
                *marginal.entry((z.s0, z.s1)).or_default() += 1;
                *cond.entry((z.s0, z.s1)).or_default() += 1;
                total += 1;
            }
            conditionals.push(cond);
        }
        // Marginal uniformity over the value's valid sharings (2 each).
        let buckets = marginal.len() as f64;
        for &count in marginal.values() {
            let p = count as f64 / total as f64;
            marginal_bias = marginal_bias.max((p - 1.0 / buckets).abs());
        }
        // Dependence: TV distance of each conditional from the marginal.
        for cond in &conditionals {
            let mut tv = 0.0f64;
            for (share_vec, &m_count) in &marginal {
                let p_marg = m_count as f64 / total as f64;
                let p_cond = cond.get(share_vec).copied().unwrap_or(0) as f64 / per_sharing as f64;
                tv += (p_cond - p_marg).abs();
            }
            sharing_dependence = sharing_dependence.max(tv / 2.0);
        }
        histograms.push(marginal);
    }
    UniformityReport { histograms, marginal_bias, sharing_dependence }
}

/// Convenience wrappers for the workspace gadgets.
pub mod gadget {
    use super::*;

    /// `secAND2` — marginally uniform but its output sharing is a
    /// *deterministic function of the input sharing*.
    pub fn sec_and2(x: MaskedBit, y: MaskedBit, _fresh: u32) -> MaskedBit {
        crate::gadgets::sec_and2(x, y)
    }

    /// `secAND2` followed by the Fig. 7 refresh — uniform again.
    pub fn sec_and2_refreshed(x: MaskedBit, y: MaskedBit, fresh: u32) -> MaskedBit {
        crate::gadgets::sec_and2(x, y).refresh_with(fresh & 1 == 1)
    }

    /// Trichina's AND (Eq. 1) with an explicit fresh bit — uniform: the
    /// fresh bit *is* the output mask.
    pub fn trichina(x: MaskedBit, y: MaskedBit, fresh: u32) -> MaskedBit {
        let r = fresh & 1 == 1;
        let z0 = (((r ^ (x.s0 & y.s0)) ^ (x.s0 & y.s1)) ^ (x.s1 & y.s1)) ^ (x.s1 & y.s0);
        MaskedBit { s0: z0, s1: r }
    }

    /// DOM-indep with an explicit fresh bit — uniform.
    pub fn dom_indep(x: MaskedBit, y: MaskedBit, fresh: u32) -> MaskedBit {
        let r = fresh & 1 == 1;
        MaskedBit {
            s0: (x.s0 & y.s0) ^ ((x.s0 & y.s1) ^ r),
            s1: (x.s1 & y.s1) ^ ((x.s1 & y.s0) ^ r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sec_and2_uniform_but_sharing_dependent() {
        let rep = check_gadget2(gadget::sec_and2, 0);
        assert!(rep.is_uniform(), "marginal bias {}", rep.marginal_bias);
        assert!(
            !rep.is_input_independent(),
            "no fresh randomness ⇒ deterministic given the input sharing"
        );
        // Deterministic conditional vs a 2-point uniform marginal: TV = ½.
        assert!((rep.sharing_dependence - 0.5).abs() < 1e-12);
    }

    #[test]
    fn refresh_restores_independence() {
        let rep = check_gadget2(gadget::sec_and2_refreshed, 1);
        assert!(rep.is_uniform());
        assert!(rep.is_input_independent(), "dependence {}", rep.sharing_dependence);
    }

    #[test]
    fn trichina_is_uniform_and_independent() {
        let rep = check_gadget2(gadget::trichina, 1);
        assert!(rep.is_uniform());
        assert!(rep.is_input_independent());
    }

    #[test]
    fn dom_indep_is_uniform_and_independent() {
        let rep = check_gadget2(gadget::dom_indep, 1);
        assert!(rep.is_uniform());
        assert!(rep.is_input_independent());
    }

    /// The value is always correct regardless of uniformity.
    #[test]
    fn histograms_respect_gadget_semantics() {
        let rep = check_gadget2(gadget::sec_and2, 0);
        for vals in 0..4usize {
            let want = (vals & 1 == 1) & (vals & 2 == 2);
            for &(z0, z1) in rep.histograms[vals].keys() {
                assert_eq!(z0 ^ z1, want, "vals {vals:02b}");
            }
        }
    }
}
