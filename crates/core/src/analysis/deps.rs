//! Share-dependency tracking: when is a refresh required?
//!
//! `secAND2` consumes no fresh randomness, so its output *sharing* is a
//! deterministic function of its input sharings. XOR-ing two signals
//! whose sharings depend on a common variable can therefore produce a
//! biased sharing (§III-C shows `f = x ⊕ y ⊕ x·y` collapsing). The fix
//! is a [`MaskedExpr::Refresh`].
//!
//! This module mechanises the rule conservatively: every signal carries
//! the set of masked variables its sharing depends on; XOR demands
//! disjoint sets; refresh clears the set. The check is sufficient, not
//! necessary — designs it accepts are uniform, designs it rejects may
//! still be repairable by smarter arguments (the paper leaves selective
//! refreshing as future work).

use std::collections::BTreeSet;
use std::fmt;

/// Identifier of an independently-shared input variable.
pub type VarId = u32;

/// A masked-domain expression over shared variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaskedExpr {
    /// An independently-shared input variable.
    Var(VarId),
    /// Share-wise XOR.
    Xor(Box<MaskedExpr>, Box<MaskedExpr>),
    /// A `secAND2`-style AND (no fresh randomness: output sharing depends
    /// on both operands' sharings).
    And(Box<MaskedExpr>, Box<MaskedExpr>),
    /// Re-mask with a fresh random bit.
    Refresh(Box<MaskedExpr>),
}

/// Composition-rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositionError {
    /// Variables whose sharings appear on both sides of the offending XOR.
    pub shared_vars: BTreeSet<VarId>,
}

impl fmt::Display for CompositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XOR of sharings that both depend on variables {:?}; refresh one side first",
            self.shared_vars
        )
    }
}

impl std::error::Error for CompositionError {}

impl MaskedExpr {
    /// Shorthand constructors.
    pub fn var(v: VarId) -> Self {
        MaskedExpr::Var(v)
    }
    /// `self ⊕ other`.
    pub fn xor(self, other: MaskedExpr) -> Self {
        MaskedExpr::Xor(Box::new(self), Box::new(other))
    }
    /// `self · other` through a randomness-free AND gadget.
    pub fn and(self, other: MaskedExpr) -> Self {
        MaskedExpr::And(Box::new(self), Box::new(other))
    }
    /// Re-mask with a fresh bit.
    pub fn refresh(self) -> Self {
        MaskedExpr::Refresh(Box::new(self))
    }

    /// Check the composition; on success returns the set of variables the
    /// final sharing still depends on.
    pub fn check(&self) -> Result<BTreeSet<VarId>, CompositionError> {
        match self {
            MaskedExpr::Var(v) => Ok([*v].into()),
            MaskedExpr::And(a, b) => {
                let mut da = a.check()?;
                let db = b.check()?;
                // secAND2 keeps the output uniform but entangled with both
                // operands' sharings.
                da.extend(db);
                Ok(da)
            }
            MaskedExpr::Xor(a, b) => {
                let da = a.check()?;
                let db = b.check()?;
                let shared: BTreeSet<VarId> = da.intersection(&db).copied().collect();
                if shared.is_empty() {
                    Ok(da.union(&db).copied().collect())
                } else {
                    Err(CompositionError { shared_vars: shared })
                }
            }
            MaskedExpr::Refresh(a) => {
                a.check()?;
                Ok(BTreeSet::new())
            }
        }
    }

    /// Number of fresh random bits the expression consumes (one per
    /// refresh).
    pub fn fresh_bits(&self) -> usize {
        match self {
            MaskedExpr::Var(_) => 0,
            MaskedExpr::Xor(a, b) | MaskedExpr::And(a, b) => a.fresh_bits() + b.fresh_bits(),
            MaskedExpr::Refresh(a) => 1 + a.fresh_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_xor_ok() {
        // x ⊕ y with independent sharings.
        let e = MaskedExpr::var(0).xor(MaskedExpr::var(1));
        assert_eq!(e.check().unwrap(), [0, 1].into());
    }

    #[test]
    fn fig7_without_refresh_rejected() {
        // f = x ⊕ y ⊕ x·y — the motivating §III-C example.
        let f = MaskedExpr::var(0)
            .xor(MaskedExpr::var(1))
            .xor(MaskedExpr::var(0).and(MaskedExpr::var(1)));
        let err = f.check().unwrap_err();
        assert_eq!(err.shared_vars, [0, 1].into());
    }

    #[test]
    fn fig7_with_refresh_accepted() {
        let f = MaskedExpr::var(0)
            .xor(MaskedExpr::var(1))
            .xor(MaskedExpr::var(0).and(MaskedExpr::var(1)).refresh());
        assert!(f.check().is_ok());
        assert_eq!(f.fresh_bits(), 1, "Fig. 7 costs exactly one fresh bit");
    }

    #[test]
    fn product_of_independent_vars_ok() {
        // a·b·c·d needs no refresh in isolation (§III-A/B).
        let p = MaskedExpr::var(0)
            .and(MaskedExpr::var(1))
            .and(MaskedExpr::var(2))
            .and(MaskedExpr::var(3));
        assert_eq!(p.check().unwrap().len(), 4);
        assert_eq!(p.fresh_bits(), 0);
    }

    #[test]
    fn mini_sbox_anf_requires_refresh_of_products() {
        // y = x1 ⊕ x2 ⊕ x1x2 (a fragment of Eq. 3): products must be
        // refreshed before the XOR stage.
        let bad = MaskedExpr::var(1)
            .xor(MaskedExpr::var(2))
            .xor(MaskedExpr::var(1).and(MaskedExpr::var(2)));
        assert!(bad.check().is_err());

        let good = MaskedExpr::var(1)
            .xor(MaskedExpr::var(2))
            .xor(MaskedExpr::var(1).and(MaskedExpr::var(2)).refresh());
        assert!(good.check().is_ok());
    }

    #[test]
    fn xor_of_two_products_with_common_factor_rejected() {
        // x·y ⊕ x·z share x.
        let e = MaskedExpr::var(0)
            .and(MaskedExpr::var(1))
            .xor(MaskedExpr::var(0).and(MaskedExpr::var(2)));
        assert_eq!(e.check().unwrap_err().shared_vars, [0].into());
    }

    #[test]
    fn refresh_clears_dependencies() {
        let e = MaskedExpr::var(0).and(MaskedExpr::var(1)).refresh();
        assert!(e.check().unwrap().is_empty());
    }
}
