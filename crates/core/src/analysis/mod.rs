//! Security analysis tooling for masked circuits.
//!
//! * [`deps`] — conservative share-dependency tracking over masked
//!   expressions: flags compositions that XOR dependent sharings without
//!   a refresh (§III-C's rule, mechanised).
//! * [`probing`] — exhaustive *stationary* first-order probing check of a
//!   gadget netlist: every wire's distribution must be independent of the
//!   unshared inputs.
//! * [`uniformity`] — exhaustive output-sharing distribution analysis:
//!   `secAND2` stays marginally uniform but its sharing is a function of
//!   the input sharing — the property refresh restores.
//! * [`glitch_model`] — Monte-Carlo **glitch-extended** check: drives a
//!   gadget netlist through the event simulator under a chosen arrival
//!   schedule and measures whether any wire's expected *toggle count*
//!   depends on unshared values. This is the mechanism behind Table I.

pub mod deps;
pub mod glitch_model;
pub mod probing;
pub mod uniformity;

pub use deps::{CompositionError, MaskedExpr};
pub use glitch_model::{glitch_probe, GlitchProbeReport};
pub use probing::{probe_check, ProbeReport};
