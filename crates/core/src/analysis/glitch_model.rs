//! Monte-Carlo glitch-extended probing analysis.
//!
//! The stationary check ([`crate::analysis::probing`]) cannot see what a
//! probe observes *during* a transition. This module drives a gadget
//! netlist through the `gm-sim` event engine under a chosen input arrival
//! schedule and asks, for every wire, whether its **expected toggle
//! count** depends on the unshared inputs. That is exactly the physical
//! quantity a power probe integrates, and it is the mechanism that makes
//! half of Table I's sequences leak.
//!
//! Randomised per-event jitter makes internal race outcomes (who wins the
//! XOR race) vary across trials, so systematic order effects show up as
//! biases rather than artefacts of one fixed delay assignment.

use crate::rng::MaskRng;
use crate::share::MaskedBit;
use gm_netlist::{NetId, Netlist};
use gm_sim::power::NetToggleSink;
use gm_sim::{DelayModel, Simulator};

/// Outcome of a glitch-extended probe analysis.
#[derive(Debug, Clone)]
pub struct GlitchProbeReport {
    /// Per-net bias: the largest deviation of any value-class's expected
    /// toggle count from the overall mean, in toggles.
    pub per_net_bias: Vec<f64>,
    /// Largest per-net bias in the design.
    pub max_bias: f64,
    /// Net achieving [`GlitchProbeReport::max_bias`].
    pub worst_net: NetId,
}

impl GlitchProbeReport {
    /// Decision helper: biases above `threshold` toggles are leaks.
    pub fn leaks(&self, threshold: f64) -> bool {
        self.max_bias > threshold
    }
}

/// Run the analysis on a two-variable gadget netlist.
///
/// * `vars` — share-net pairs `(s0, s1)` of the masked variables (≤ 3);
/// * `arrivals` — `(net, time_ps)`: when each share net's value is applied
///   (the arrival schedule under test). Every share net must appear once.
/// * `trials` — Monte-Carlo sample count;
/// * `jitter_sigma_ps` — per-event delay jitter fed to the simulator.
///
/// The circuit starts from the all-zero reset state each trial, mirroring
/// the Table I experiment setup.
pub fn glitch_probe(
    netlist: &Netlist,
    vars: &[(NetId, NetId)],
    arrivals: &[(NetId, u64)],
    trials: u64,
    jitter_sigma_ps: f64,
    seed: u64,
) -> GlitchProbeReport {
    assert!(!vars.is_empty() && vars.len() <= 3, "1..=3 masked variables");
    let num_classes = 1usize << vars.len();
    let num_nets = netlist.num_nets();
    let end_time = arrivals.iter().map(|&(_, t)| t).max().unwrap_or(0) + 1_000_000;

    let delays = DelayModel::with_variation(netlist, 0.15, jitter_sigma_ps, seed);
    let mut rng = MaskRng::new(seed ^ 0x5851_f42d_4c95_7f2d);

    let mut sums = vec![vec![0f64; num_nets]; num_classes];
    let mut counts = vec![0u64; num_classes];
    let mut sink = NetToggleSink::new(num_nets);

    for trial in 0..trials {
        // Sample unshared values and sharings.
        let mut class = 0usize;
        let mut assignment: Vec<(NetId, bool)> = Vec::with_capacity(2 * vars.len());
        for (i, &(s0, s1)) in vars.iter().enumerate() {
            let value = rng.bit();
            class |= (value as usize) << i;
            let shared = MaskedBit::mask(value, &mut rng);
            assignment.push((s0, shared.s0));
            assignment.push((s1, shared.s1));
        }

        let mut sim = Simulator::new(netlist, &delays, seed ^ trial);
        sim.init_all_zero();
        for &(net, t) in arrivals {
            let v = assignment
                .iter()
                .find(|&&(a, _)| a == net)
                .map(|&(_, v)| v)
                .expect("every scheduled net must be a share net");
            sim.schedule(net, t, v);
        }
        sink.clear();
        sim.run_until(end_time, &mut sink);

        counts[class] += 1;
        for (s, &c) in sums[class].iter_mut().zip(&sink.counts) {
            *s += f64::from(c);
        }
    }

    let total: u64 = counts.iter().sum();
    let mut per_net_bias = vec![0.0; num_nets];
    let mut max_bias = 0.0;
    let mut worst_net = NetId(0);
    for net in 0..num_nets {
        let overall: f64 = sums.iter().map(|s| s[net]).sum::<f64>() / total as f64;
        let mut bias = 0.0f64;
        for c in 0..num_classes {
            if counts[c] == 0 {
                continue;
            }
            let mean_c = sums[c][net] / counts[c] as f64;
            bias = bias.max((mean_c - overall).abs());
        }
        per_net_bias[net] = bias;
        if bias > max_bias {
            max_bias = bias;
            worst_net = NetId(net as u32);
        }
    }
    GlitchProbeReport { per_net_bias, max_bias, worst_net }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::sec_and2::build_sec_and2;
    use crate::gadgets::AndInputs;
    use crate::schedule::{all_sequences, predicted_leaky, InputShare};

    fn fixture() -> (Netlist, AndInputs) {
        let mut n = Netlist::new("g");
        let io = AndInputs {
            x0: n.input("x0"),
            x1: n.input("x1"),
            y0: n.input("y0"),
            y1: n.input("y1"),
        };
        let out = build_sec_and2(&mut n, io);
        n.output("z0", out.z0);
        n.output("z1", out.z1);
        n.validate().unwrap();
        (n, io)
    }

    fn schedule_for(io: AndInputs, seq: &[InputShare; 4]) -> Vec<(NetId, u64)> {
        // One share per "cycle", 100 ns apart — far beyond settle time.
        seq.iter()
            .enumerate()
            .map(|(i, s)| {
                let net = match s {
                    InputShare::X0 => io.x0,
                    InputShare::X1 => io.x1,
                    InputShare::Y0 => io.y0,
                    InputShare::Y1 => io.y1,
                };
                (net, 10_000 + 100_000 * i as u64)
            })
            .collect()
    }

    /// The glitch-extended analysis agrees with the paper's Table I rule
    /// on a representative leaky and a representative safe sequence.
    #[test]
    fn table1_spot_check() {
        let (n, io) = fixture();
        // y1 y0 x1 x0 — ends in x0: leaks.
        let leaky = [InputShare::Y1, InputShare::Y0, InputShare::X1, InputShare::X0];
        // x0 x1 y0 y1 — ends in y1: safe.
        let safe = [InputShare::X0, InputShare::X1, InputShare::Y0, InputShare::Y1];
        assert!(predicted_leaky(&leaky) && !predicted_leaky(&safe));

        let r_leaky = glitch_probe(
            &n,
            &[(io.x0, io.x1), (io.y0, io.y1)],
            &schedule_for(io, &leaky),
            3_000,
            60.0,
            7,
        );
        let r_safe = glitch_probe(
            &n,
            &[(io.x0, io.x1), (io.y0, io.y1)],
            &schedule_for(io, &safe),
            3_000,
            60.0,
            7,
        );
        assert!(
            r_leaky.max_bias > 4.0 * r_safe.max_bias.max(0.02),
            "leaky {} vs safe {}",
            r_leaky.max_bias,
            r_safe.max_bias
        );
    }

    /// Full agreement with the analytic rule across all 24 sequences is
    /// exercised by the `table1` experiment binary; here we check the
    /// dichotomy statistically on a few sequences from each side.
    #[test]
    fn rule_agreement_sampled() {
        let (n, io) = fixture();
        let vars = [(io.x0, io.x1), (io.y0, io.y1)];
        let mut worst_safe = 0.0f64;
        let mut best_leaky = f64::MAX;
        for (i, seq) in all_sequences().into_iter().enumerate() {
            if i % 6 != 0 {
                continue; // sample 4 sequences for test speed
            }
            let r = glitch_probe(&n, &vars, &schedule_for(io, &seq), 2_000, 60.0, 11);
            if predicted_leaky(&seq) {
                best_leaky = best_leaky.min(r.max_bias);
            } else {
                worst_safe = worst_safe.max(r.max_bias);
            }
        }
        assert!(
            best_leaky > worst_safe,
            "leaky sequences must show more bias: best_leaky={best_leaky} worst_safe={worst_safe}"
        );
    }
}
