//! Composition of gadgets into product terms (§III).
//!
//! * **FF style** (Fig. 4): a balanced tree of `secAND2-FF` gadgets; layer
//!   `l`'s internal flip-flops are enabled on cycle `l+1`, giving a
//!   product of `n` variables in `⌈log₂ n⌉ + 1` cycles with `n − 1`
//!   gadgets.
//! * **PD style** (Fig. 6): a chain of `secAND2-PD` gadgets with the
//!   generalised Table II delay schedule on the primary inputs, computing
//!   the whole product in a **single** cycle.

use crate::gadgets::sec_and2::build_sec_and2;
use crate::gadgets::{AndInputs, AndOutputs};
use crate::schedule::chain_delay_schedule;
use crate::share::MaskedBit;
use gm_netlist::{NetId, Netlist};

/// Software model: masked product of all bits (independent sharings
/// assumed), folded through `secAND2`.
///
/// # Examples
///
/// ```
/// use gm_core::{MaskRng, MaskedBit};
/// use gm_core::compose::product;
///
/// let mut rng = MaskRng::new(1);
/// let bits: Vec<MaskedBit> =
///     [true, true, false].iter().map(|&v| MaskedBit::mask(v, &mut rng)).collect();
/// assert!(!product(&bits).unmask(), "1·1·0 = 0");
/// ```
///
/// # Panics
///
/// Panics on an empty slice.
pub fn product(bits: &[MaskedBit]) -> MaskedBit {
    let (&first, rest) = bits.split_first().expect("product of at least one bit");
    rest.iter().fold(first, |acc, &b| crate::gadgets::sec_and2(acc, b))
}

/// Latency in cycles of the FF-style tree for `n` variables:
/// `⌈log₂ n⌉ + 1` (§III-A).
pub fn ff_tree_latency(n: usize) -> usize {
    assert!(n >= 2, "a product needs at least two variables");
    (usize::BITS - (n - 1).leading_zeros()) as usize + 1
}

/// Result of building an FF-style product tree.
#[derive(Debug, Clone)]
pub struct FfTree {
    /// Output shares of the full product.
    pub out: AndOutputs,
    /// Enable net of each tree layer; layer `l` must be pulsed high on
    /// cycle `l + 1` (Fig. 4's FSM contract).
    pub layer_enables: Vec<NetId>,
    /// Total latency in cycles.
    pub latency_cycles: usize,
    /// Number of `secAND2` gadgets instantiated (`n − 1`).
    pub gadgets: usize,
}

/// Build the Fig. 4 product tree over independently-shared variables.
/// `vars[i]` is `(share0, share1)` of variable `i`.
///
/// # Panics
///
/// Panics with fewer than two variables.
pub fn build_product_tree_ff(n: &mut Netlist, vars: &[(NetId, NetId)]) -> FfTree {
    assert!(vars.len() >= 2, "a product needs at least two variables");
    let mut layer_enables = Vec::new();
    let mut gadgets = 0;
    let mut level: Vec<(NetId, NetId)> = vars.to_vec();
    let mut layer = 0usize;
    while level.len() > 1 {
        let enable = n.input(format!("en_layer{layer}"));
        layer_enables.push(enable);
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.chunks_exact(2);
        for pair in &mut it {
            let (x, y) = (pair[0], pair[1]);
            // secAND2 with the y1 share registered behind this layer's
            // enable — the "internal FF" of secAND2-FF.
            let out = crate::gadgets::sec_and2_ff::build_sec_and2_ff(
                n,
                AndInputs { x0: x.0, x1: x.1, y0: y.0, y1: y.1 },
                enable,
            );
            gadgets += 1;
            next.push((out.z0, out.z1));
        }
        if let [odd] = it.remainder() {
            next.push(*odd);
        }
        level = next;
        layer += 1;
    }
    FfTree {
        out: AndOutputs { z0: level[0].0, z1: level[0].1 },
        layer_enables,
        latency_cycles: ff_tree_latency(vars.len()),
        gadgets,
    }
}

/// Result of building a PD-style product chain.
#[derive(Debug, Clone)]
pub struct PdChain {
    /// Output shares of the full product.
    pub out: AndOutputs,
    /// Number of `secAND2` gadgets instantiated (`n − 1`).
    pub gadgets: usize,
    /// Total delay elements inserted.
    pub delay_bufs: usize,
}

/// Build the Fig. 6 single-cycle product chain over independently-shared
/// variables, inserting `unit_luts`-element DelayUnits per the
/// generalised Table II schedule.
///
/// # Panics
///
/// Panics with fewer than two variables.
pub fn build_product_chain_pd(
    n: &mut Netlist,
    vars: &[(NetId, NetId)],
    unit_luts: usize,
) -> PdChain {
    let schedule = chain_delay_schedule(vars.len());
    build_product_chain_pd_with_schedule(n, vars, unit_luts, &schedule)
}

/// As [`build_product_chain_pd`] but with an explicit delay schedule —
/// for ablation studies that deliberately violate the safe sequence
/// (e.g. making an `x` share arrive last, which Table I shows to leak).
///
/// # Panics
///
/// Panics with fewer than two variables.
pub fn build_product_chain_pd_with_schedule(
    n: &mut Netlist,
    vars: &[(NetId, NetId)],
    unit_luts: usize,
    schedule: &[crate::schedule::ShareDelay],
) -> PdChain {
    let k = vars.len();
    assert!(k >= 2, "a product needs at least two variables");
    let mut delayed: Vec<(NetId, NetId)> = vars.to_vec();
    let mut delay_bufs = 0;
    for d in schedule {
        let bufs = d.units * unit_luts;
        delay_bufs += bufs;
        let (s0, s1) = delayed[d.var];
        if d.share == 0 {
            delayed[d.var].0 = n.delay_chain(s0, bufs);
        } else {
            delayed[d.var].1 = n.delay_chain(s1, bufs);
        }
    }
    // Chain: variable 0 is the first gadget's x operand, each later
    // variable the y operand of the next gadget.
    let mut acc = delayed[0];
    for &(y0, y1) in &delayed[1..] {
        let out = build_sec_and2(n, AndInputs { x0: acc.0, x1: acc.1, y0, y1 });
        acc = (out.z0, out.z1);
    }
    PdChain { out: AndOutputs { z0: acc.0, z1: acc.1 }, gadgets: k - 1, delay_bufs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::MaskRng;
    use gm_netlist::Evaluator;

    #[test]
    fn software_product_correct() {
        let mut rng = MaskRng::new(81);
        for k in 2..=5 {
            for _ in 0..32 {
                let vals: Vec<bool> = (0..k).map(|_| rng.bit()).collect();
                let bits: Vec<MaskedBit> =
                    vals.iter().map(|&v| MaskedBit::mask(v, &mut rng)).collect();
                assert_eq!(product(&bits).unmask(), vals.iter().all(|&v| v));
            }
        }
    }

    #[test]
    fn latency_formula() {
        assert_eq!(ff_tree_latency(2), 2);
        assert_eq!(ff_tree_latency(3), 3);
        assert_eq!(ff_tree_latency(4), 3); // Fig. 4: three cycles
        assert_eq!(ff_tree_latency(5), 4);
        assert_eq!(ff_tree_latency(8), 4);
    }

    fn drive_ff_tree(k: usize) {
        let mut n = Netlist::new("tree");
        let vars: Vec<(NetId, NetId)> =
            (0..k).map(|i| (n.input(format!("v{i}s0")), n.input(format!("v{i}s1")))).collect();
        let tree = build_product_tree_ff(&mut n, &vars);
        n.output("z0", tree.out.z0);
        n.output("z1", tree.out.z1);
        n.validate().unwrap();
        assert_eq!(tree.gadgets, k - 1);

        let mut ev = Evaluator::new(&n).unwrap();
        let mut rng = MaskRng::new(83);
        for _ in 0..16 {
            let vals: Vec<bool> = (0..k).map(|_| rng.bit()).collect();
            let bits: Vec<MaskedBit> = vals.iter().map(|&v| MaskedBit::mask(v, &mut rng)).collect();
            ev.reset();
            // Cycle 1: all inputs arrive, no layer enabled.
            for (i, b) in bits.iter().enumerate() {
                ev.set_input(vars[i].0, b.s0);
                ev.set_input(vars[i].1, b.s1);
            }
            for &e in &tree.layer_enables {
                ev.set_input(e, false);
            }
            ev.clock(&n);
            // Cycle l+1: enable layer l only.
            for (l, &e) in tree.layer_enables.iter().enumerate() {
                for &other in &tree.layer_enables {
                    ev.set_input(other, false);
                }
                ev.set_input(e, true);
                ev.clock(&n);
                let _ = l;
            }
            ev.settle(&n);
            let z = ev.value(tree.out.z0) ^ ev.value(tree.out.z1);
            assert_eq!(z, vals.iter().all(|&v| v), "k={k} vals={vals:?}");
        }
    }

    #[test]
    fn ff_tree_products_of_2_to_6() {
        for k in 2..=6 {
            drive_ff_tree(k);
        }
    }

    #[test]
    fn pd_chain_functional_and_sized() {
        for k in 2..=4usize {
            let mut n = Netlist::new("chain");
            let vars: Vec<(NetId, NetId)> =
                (0..k).map(|i| (n.input(format!("v{i}s0")), n.input(format!("v{i}s1")))).collect();
            let chain = build_product_chain_pd(&mut n, &vars, 2);
            n.output("z0", chain.out.z0);
            n.output("z1", chain.out.z1);
            n.validate().unwrap();
            assert_eq!(chain.gadgets, k - 1);
            // Total units = sum of schedule units × unit_luts.
            let total_units: usize = chain_delay_schedule(k).iter().map(|d| d.units).sum();
            assert_eq!(chain.delay_bufs, 2 * total_units);

            let mut ev = Evaluator::new(&n).unwrap();
            let mut rng = MaskRng::new(84);
            for _ in 0..16 {
                let vals: Vec<bool> = (0..k).map(|_| rng.bit()).collect();
                let mut pins = Vec::new();
                for (i, &v) in vals.iter().enumerate() {
                    let b = MaskedBit::mask(v, &mut rng);
                    pins.push((vars[i].0, b.s0));
                    pins.push((vars[i].1, b.s1));
                }
                let outs = ev.run_combinational(&n, &pins);
                assert_eq!(outs[0] ^ outs[1], vals.iter().all(|&v| v), "k={k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two variables")]
    fn single_variable_tree_panics() {
        let mut n = Netlist::new("t");
        let v = (n.input("a0"), n.input("a1"));
        let _ = build_product_tree_ff(&mut n, &[v]);
    }
}
