//! Linear masked gadgets: XOR and NOT.
//!
//! XOR is applied share-wise (`z᷀ᵢ = xᵢ ⊕ yᵢ`), NOT flips exactly one
//! share. Both are trivially glitch-safe *in isolation*; the subtlety the
//! paper stresses (§III-C) is that XOR-ing **dependent** sharings skews
//! the output distribution — that check lives in
//! [`crate::analysis::deps`].

use crate::share::MaskedBit;
use gm_netlist::{NetId, Netlist};

/// Share-wise masked XOR (software model): see [`MaskedBit::xor`].
pub fn masked_xor(x: MaskedBit, y: MaskedBit) -> MaskedBit {
    x.xor(y)
}

/// Masked NOT (software model): see [`MaskedBit::not`].
pub fn masked_not(x: MaskedBit) -> MaskedBit {
    x.not()
}

/// Netlist generator for a masked XOR: two independent XOR2 cells, one
/// per share domain.
pub fn build_masked_xor(n: &mut Netlist, x: (NetId, NetId), y: (NetId, NetId)) -> (NetId, NetId) {
    (n.xor2(x.0, y.0), n.xor2(x.1, y.1))
}

/// Netlist generator for a masked NOT: a single inverter on share 0.
pub fn build_masked_not(n: &mut Netlist, x: (NetId, NetId)) -> (NetId, NetId) {
    (n.inv(x.0), x.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_netlist::Evaluator;

    #[test]
    fn model_truth_table() {
        for bits in 0..16u8 {
            let x = MaskedBit { s0: bits & 1 != 0, s1: bits & 2 != 0 };
            let y = MaskedBit { s0: bits & 4 != 0, s1: bits & 8 != 0 };
            assert_eq!(masked_xor(x, y).unmask(), x.unmask() ^ y.unmask());
            assert_eq!(masked_not(x).unmask(), !x.unmask());
        }
    }

    #[test]
    fn netlist_shares_never_mix() {
        let mut n = Netlist::new("mxor");
        let x = (n.input("x0"), n.input("x1"));
        let y = (n.input("y0"), n.input("y1"));
        let (z0, z1) = build_masked_xor(&mut n, x, y);
        n.output("z0", z0);
        n.output("z1", z1);
        n.validate().unwrap();
        // Structural share separation: the cone of z0 must not touch
        // share-1 inputs and vice versa.
        for g in n.gates() {
            let ins: Vec<_> = g.inputs.clone();
            assert!(
                !(ins.contains(&x.0) && ins.contains(&x.1)),
                "a single gate mixes both shares of x"
            );
        }
        let mut ev = Evaluator::new(&n).unwrap();
        let outs = ev.run_combinational(&n, &[(x.0, true), (x.1, false), (y.0, true), (y.1, true)]);
        assert_eq!(outs[0] ^ outs[1], (true ^ false) ^ (true ^ true));
    }

    #[test]
    fn masked_not_netlist() {
        let mut n = Netlist::new("mnot");
        let x = (n.input("x0"), n.input("x1"));
        let (z0, z1) = build_masked_not(&mut n, x);
        n.output("z0", z0);
        n.output("z1", z1);
        let mut ev = Evaluator::new(&n).unwrap();
        let outs = ev.run_combinational(&n, &[(x.0, true), (x.1, true)]);
        assert_eq!(outs[0] ^ outs[1], !(true ^ true));
    }
}
