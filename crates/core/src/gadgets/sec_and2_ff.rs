//! `secAND2-FF` (paper §II-C, Fig. 2): `secAND2` with an internal
//! enable-controlled flip-flop delaying share `y₁`.
//!
//! §II-B establishes that any arrival sequence ending in `y₀` or `y₁` is
//! glitch-safe; the FF forces `y₁` to arrive one cycle after everything
//! else, so every evaluation takes **two cycles** and is safe — *provided
//! the gadget is reset between consecutive multiplications* (otherwise a
//! late-arriving `x₀/x₁` of the next operation can leak the previous
//! unshared `n = n₀ ⊕ n₁`, as derived in §II-C).

use super::{AndInputs, AndOutputs};
use crate::share::MaskedBit;
use gm_netlist::{NetId, Netlist};

/// Cycle-accurate software model of `secAND2-FF`.
///
/// Drive it like the hardware: [`SecAnd2Ff::reset`], then
/// [`SecAnd2Ff::load_y1`] on the first cycle, then [`SecAnd2Ff::eval`] on
/// the second. The model tracks whether the reset discipline was honoured
/// so composition code can assert it.
#[derive(Debug, Clone, Default)]
pub struct SecAnd2Ff {
    y1_reg: bool,
    loaded: bool,
}

impl SecAnd2Ff {
    /// A gadget fresh out of reset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear the internal register (must happen between evaluations).
    pub fn reset(&mut self) {
        self.y1_reg = false;
        self.loaded = false;
    }

    /// Cycle 1: capture share `y₁` into the internal flip-flop.
    pub fn load_y1(&mut self, y1: bool) {
        self.y1_reg = y1;
        self.loaded = true;
    }

    /// Cycle 2: combinational evaluation with the registered `y₁`.
    ///
    /// # Panics
    ///
    /// Panics when `load_y1` has not been called since the last reset —
    /// the discipline violation that §II-C shows to leak.
    pub fn eval(&self, x: MaskedBit, y0: bool) -> MaskedBit {
        assert!(self.loaded, "secAND2-FF evaluated without loading y1 (reset discipline)");
        let y = MaskedBit { s0: y0, s1: self.y1_reg };
        crate::gadgets::sec_and2(x, y)
    }

    /// Convenience: run the full two-cycle protocol at once.
    pub fn and(&mut self, x: MaskedBit, y: MaskedBit) -> MaskedBit {
        self.reset();
        self.load_y1(y.s1);
        self.eval(x, y.s0)
    }
}

/// Netlist generator for `secAND2-FF` (Fig. 2).
///
/// `enable` gates the internal `y₁` flip-flop: composition circuits pulse
/// it on the cycle where `y₁` may arrive (Fig. 4's FSM control). Returns
/// the output shares; the internal FF is the only sequential element.
pub fn build_sec_and2_ff(n: &mut Netlist, io: AndInputs, enable: NetId) -> AndOutputs {
    let y1_q = n.dff_en(io.y1, enable);
    super::sec_and2::build_sec_and2(n, AndInputs { x0: io.x0, x1: io.x1, y0: io.y0, y1: y1_q })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::MaskRng;
    use gm_netlist::Evaluator;

    #[test]
    fn two_cycle_protocol_is_correct() {
        let mut rng = MaskRng::new(21);
        let mut g = SecAnd2Ff::new();
        for _ in 0..64 {
            let (xv, yv) = (rng.bit(), rng.bit());
            let x = MaskedBit::mask(xv, &mut rng);
            let y = MaskedBit::mask(yv, &mut rng);
            assert_eq!(g.and(x, y).unmask(), xv & yv);
        }
    }

    #[test]
    #[should_panic(expected = "reset discipline")]
    fn eval_without_load_panics() {
        let mut g = SecAnd2Ff::new();
        g.reset();
        let _ = g.eval(MaskedBit::constant(true), false);
    }

    #[test]
    fn netlist_matches_two_cycle_model() {
        let mut n = Netlist::new("secand2ff");
        let io = AndInputs {
            x0: n.input("x0"),
            x1: n.input("x1"),
            y0: n.input("y0"),
            y1: n.input("y1"),
        };
        let en = n.input("en");
        let out = build_sec_and2_ff(&mut n, io, en);
        n.output("z0", out.z0);
        n.output("z1", out.z1);
        n.validate().unwrap();

        let mut ev = Evaluator::new(&n).unwrap();
        let mut rng = MaskRng::new(22);
        for _ in 0..32 {
            let (xv, yv) = (rng.bit(), rng.bit());
            let x = MaskedBit::mask(xv, &mut rng);
            let y = MaskedBit::mask(yv, &mut rng);
            ev.reset();
            // Cycle 1: present y1 with enable high; FF captures at the edge.
            ev.set_input(io.y1, y.s1);
            ev.set_input(en, true);
            ev.clock(&n);
            // Cycle 2: enable low, present the rest, read combinationally.
            ev.set_input(en, false);
            ev.set_input(io.x0, x.s0);
            ev.set_input(io.x1, x.s1);
            ev.set_input(io.y0, y.s0);
            ev.settle(&n);
            let z = MaskedBit { s0: ev.value(out.z0), s1: ev.value(out.z1) };
            assert_eq!(z.unmask(), xv & yv);
        }
    }

    #[test]
    fn disabled_ff_freezes_y1() {
        let mut n = Netlist::new("t");
        let io = AndInputs {
            x0: n.input("x0"),
            x1: n.input("x1"),
            y0: n.input("y0"),
            y1: n.input("y1"),
        };
        let en = n.input("en");
        let out = build_sec_and2_ff(&mut n, io, en);
        n.output("z0", out.z0);
        n.output("z1", out.z1);
        let mut ev = Evaluator::new(&n).unwrap();
        ev.set_input(io.y1, true);
        ev.set_input(en, false);
        ev.clock(&n);
        // y1 never captured: gadget still sees y1 = 0.
        ev.set_input(io.x0, true);
        ev.set_input(io.y0, true);
        ev.settle(&n);
        // z0 = (1&1) ^ (1 | !0) = 1 ^ 1 = 0
        assert!(!ev.value(out.z0));
    }
}
