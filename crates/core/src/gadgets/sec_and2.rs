//! The `secAND2` gadget (Biryukov et al., adopted by the paper as Eq. 2):
//!
//! ```text
//! z₀ = (x₀ · y₀) ⊕ (x₀ + ¬y₁)
//! z₁ = (x₁ · y₀) ⊕ (x₁ + ¬y₁)
//! ```
//!
//! (`·` AND, `⊕` XOR, `+` OR). It computes `z = x·y` on two-share inputs
//! **without fresh randomness**. Two caveats drive the rest of the paper:
//!
//! * a naive combinational implementation leaks through glitches — the
//!   hardened variants are [`crate::gadgets::sec_and2_ff`] and
//!   [`crate::gadgets::sec_and2_pd`];
//! * the output sharing is **not independent of the inputs**, so
//!   compositions that recombine dependent terms must refresh
//!   (see [`crate::analysis::deps`]).

use super::{AndInputs, AndOutputs};
use crate::share::MaskedBit;
use gm_netlist::Netlist;

/// Software model of `secAND2`: returns the masked product `x·y`.
///
/// # Examples
///
/// ```
/// use gm_core::{MaskedBit, MaskRng};
/// use gm_core::gadgets::sec_and2;
///
/// let mut rng = MaskRng::new(1);
/// let x = MaskedBit::mask(true, &mut rng);
/// let y = MaskedBit::mask(true, &mut rng);
/// assert!(sec_and2(x, y).unmask());
/// ```
pub fn sec_and2(x: MaskedBit, y: MaskedBit) -> MaskedBit {
    let z0 = (x.s0 & y.s0) ^ (x.s0 | !y.s1);
    let z1 = (x.s1 & y.s0) ^ (x.s1 | !y.s1);
    MaskedBit { s0: z0, s1: z1 }
}

/// Netlist generator for the plain combinational `secAND2` (Fig. 1):
/// seven gates (2×AND2, 2×OR2, 2×XOR2, 1×INV), no registers.
pub fn build_sec_and2(n: &mut Netlist, io: AndInputs) -> AndOutputs {
    let ny1 = n.inv(io.y1);
    let a0 = n.and2(io.x0, io.y0);
    let o0 = n.or2(io.x0, ny1);
    let z0 = n.xor2(a0, o0);
    let a1 = n.and2(io.x1, io.y0);
    let o1 = n.or2(io.x1, ny1);
    let z1 = n.xor2(a1, o1);
    AndOutputs { z0, z1 }
}

/// The *insecure* classical masked AND the paper opens with
/// (`z₀ = x₀y₀ ⊕ x₀y₁`, `z₁ = x₁y₀ ⊕ x₁y₁`): `z₀` equals `x₀·y`, i.e. it
/// depends on the **unshared** `y`. Kept as a negative control for the
/// probing checker and the leakage experiments.
pub fn insecure_and2(x: MaskedBit, y: MaskedBit) -> MaskedBit {
    MaskedBit { s0: (x.s0 & y.s0) ^ (x.s0 & y.s1), s1: (x.s1 & y.s0) ^ (x.s1 & y.s1) }
}

/// Netlist for [`insecure_and2`] (negative control).
pub fn build_insecure_and2(n: &mut Netlist, io: AndInputs) -> AndOutputs {
    let a = n.and2(io.x0, io.y0);
    let b = n.and2(io.x0, io.y1);
    let z0 = n.xor2(a, b);
    let c = n.and2(io.x1, io.y0);
    let d = n.and2(io.x1, io.y1);
    let z1 = n.xor2(c, d);
    AndOutputs { z0, z1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_netlist::Evaluator;

    /// Exhaustive functional correctness over all 16 share assignments.
    #[test]
    fn correct_for_all_sharings() {
        for bits in 0..16u8 {
            let x = MaskedBit { s0: bits & 1 != 0, s1: bits & 2 != 0 };
            let y = MaskedBit { s0: bits & 4 != 0, s1: bits & 8 != 0 };
            assert_eq!(sec_and2(x, y).unmask(), x.unmask() & y.unmask(), "sharing {bits:04b}");
            assert_eq!(insecure_and2(x, y).unmask(), x.unmask() & y.unmask());
        }
    }

    /// The netlist computes the same function as the software model.
    #[test]
    fn netlist_matches_model() {
        let mut n = Netlist::new("secand2");
        let io = AndInputs {
            x0: n.input("x0"),
            x1: n.input("x1"),
            y0: n.input("y0"),
            y1: n.input("y1"),
        };
        let out = build_sec_and2(&mut n, io);
        n.output("z0", out.z0);
        n.output("z1", out.z1);
        n.validate().unwrap();
        assert_eq!(n.num_gates(), 7, "Fig. 1 has seven gates");

        let mut ev = Evaluator::new(&n).unwrap();
        for bits in 0..16u8 {
            let x = MaskedBit { s0: bits & 1 != 0, s1: bits & 2 != 0 };
            let y = MaskedBit { s0: bits & 4 != 0, s1: bits & 8 != 0 };
            let outs = ev.run_combinational(
                &n,
                &[(io.x0, x.s0), (io.x1, x.s1), (io.y0, y.s0), (io.y1, y.s1)],
            );
            let want = sec_and2(x, y);
            assert_eq!((outs[0], outs[1]), (want.s0, want.s1), "sharing {bits:04b}");
        }
    }

    /// Output shares are *not* independent of inputs (the paper's caveat).
    /// Exact witness: for x = 0, y = 1 (so x₁ = x₀, y₁ = ¬y₀), both output
    /// shares collapse to the deterministic function x₀ ⊕ y₀ of the input
    /// sharing — this is why composition needs refresh (§III-C).
    #[test]
    fn output_sharing_depends_on_inputs() {
        for x0 in [false, true] {
            for y0 in [false, true] {
                let x = MaskedBit { s0: x0, s1: x0 }; // x = 0
                let y = MaskedBit { s0: y0, s1: !y0 }; // y = 1
                let z = sec_and2(x, y);
                assert_eq!(z.s0, x0 ^ y0, "z0 is a deterministic share function");
                assert_eq!(z.s1, x0 ^ y0, "z1 likewise");
                assert!(!z.unmask(), "0 · 1 = 0");
            }
        }
    }
}
