//! Trichina's masked AND (baseline, Eq. 1 of the paper):
//!
//! ```text
//! z₀ = r ⊕ (x₀·y₀) ⊕ (x₀·y₁) ⊕ (x₁·y₁) ⊕ (x₁·y₀)
//! z₁ = r
//! ```
//!
//! Secure only when evaluated strictly left-to-right — software can
//! guarantee that, hardware cannot (glitches), which is the paper's
//! starting observation. Costs one fresh random bit per AND; the gadget
//! also needs more cells than `secAND2` (4 AND + 4 XOR vs 2 AND + 2 OR +
//! 2 XOR + 1 INV), which is `secAND2`'s other advantage.

use super::{AndInputs, AndOutputs};
use crate::rng::MaskRng;
use crate::share::MaskedBit;
use gm_netlist::{NetId, Netlist};

/// Software model with the mandated left-to-right evaluation order.
pub fn trichina_and(x: MaskedBit, y: MaskedBit, rng: &mut MaskRng) -> MaskedBit {
    let r = rng.bit();
    // Parenthesised exactly as the secure order demands.
    let z0 = ((((r ^ (x.s0 & y.s0)) ^ (x.s0 & y.s1)) ^ (x.s1 & y.s1)) ^ (x.s1 & y.s0),);
    MaskedBit { s0: z0.0, s1: r }
}

/// Number of fresh random bits per evaluation.
pub const FRESH_BITS: usize = 1;

/// Netlist generator. `r` is the fresh-randomness input net. The XOR
/// chain is emitted in the secure order, but **glitches make the
/// hardware order undefined** — this netlist exists as the negative
/// control / baseline for area and leakage comparisons.
pub fn build_trichina_and(n: &mut Netlist, io: AndInputs, r: NetId) -> AndOutputs {
    let p00 = n.and2(io.x0, io.y0);
    let p01 = n.and2(io.x0, io.y1);
    let p11 = n.and2(io.x1, io.y1);
    let p10 = n.and2(io.x1, io.y0);
    let t1 = n.xor2(r, p00);
    let t2 = n.xor2(t1, p01);
    let t3 = n.xor2(t2, p11);
    let z0 = n.xor2(t3, p10);
    AndOutputs { z0, z1: r }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_netlist::Evaluator;

    #[test]
    fn correct_for_all_sharings() {
        let mut rng = MaskRng::new(51);
        for bits in 0..16u8 {
            let x = MaskedBit { s0: bits & 1 != 0, s1: bits & 2 != 0 };
            let y = MaskedBit { s0: bits & 4 != 0, s1: bits & 8 != 0 };
            assert_eq!(trichina_and(x, y, &mut rng).unmask(), x.unmask() & y.unmask());
        }
    }

    #[test]
    fn output_mask_is_the_fresh_bit() {
        // With the PRNG disabled, z1 must be 0 and z0 the plain product of
        // recombined shares.
        let mut rng = MaskRng::disabled();
        let x = MaskedBit { s0: true, s1: true }; // x = 0
        let y = MaskedBit { s0: true, s1: false }; // y = 1
        let z = trichina_and(x, y, &mut rng);
        assert!(!z.s1);
        assert!(!z.unmask());
    }

    #[test]
    fn netlist_matches_model() {
        let mut n = Netlist::new("trichina");
        let io = AndInputs {
            x0: n.input("x0"),
            x1: n.input("x1"),
            y0: n.input("y0"),
            y1: n.input("y1"),
        };
        let r = n.input("r");
        let out = build_trichina_and(&mut n, io, r);
        n.output("z0", out.z0);
        n.output("z1", out.z1);
        n.validate().unwrap();
        assert_eq!(n.num_gates(), 8, "4 AND + 4 XOR");

        let mut ev = Evaluator::new(&n).unwrap();
        for bits in 0..32u8 {
            let outs = ev.run_combinational(
                &n,
                &[
                    (io.x0, bits & 1 != 0),
                    (io.x1, bits & 2 != 0),
                    (io.y0, bits & 4 != 0),
                    (io.y1, bits & 8 != 0),
                    (r, bits & 16 != 0),
                ],
            );
            let x = (bits & 1 != 0) ^ (bits & 2 != 0);
            let y = (bits & 4 != 0) ^ (bits & 8 != 0);
            assert_eq!(outs[0] ^ outs[1], x & y, "bits {bits:05b}");
        }
    }
}
