//! Domain-Oriented Masking AND gadgets (Groß et al.) — the baselines the
//! paper compares its DES cores against via Sasdrich & Hutter's
//! DOM-protected TDES.
//!
//! **DOM-indep** (inputs independently shared, 1 fresh bit, 1 register
//! stage, 1-cycle latency):
//!
//! ```text
//! z₀ = x₀y₀ ⊕ FF(x₀y₁ ⊕ r)
//! z₁ = x₁y₁ ⊕ FF(x₁y₀ ⊕ r)
//! ```
//!
//! The registers stop glitch propagation across the share-domain
//! crossing; the fresh `r` restores uniformity.
//!
//! **DOM-dep** (inputs may share randomness) additionally blinds each
//! operand, consuming 3 fresh bits per AND — the variant whose leakage
//! Sasdrich & Hutter actually assess, and whose randomness cost (528 bits
//! per TDES round) Table III quotes.

use super::{AndInputs, AndOutputs};
use crate::rng::MaskRng;
use crate::share::MaskedBit;
use gm_netlist::{NetId, Netlist};

/// Fresh random bits per DOM-indep AND.
pub const DOM_INDEP_FRESH_BITS: usize = 1;
/// Fresh random bits per DOM-dep AND.
pub const DOM_DEP_FRESH_BITS: usize = 3;

/// Cycle-accurate software model of a DOM-indep AND.
///
/// Call [`DomIndep::compute`] on cycle 1 (cross terms registered),
/// [`DomIndep::output`] on cycle 2.
#[derive(Debug, Clone, Default)]
pub struct DomIndep {
    cross0: bool,
    cross1: bool,
    inner0: bool,
    inner1: bool,
    loaded: bool,
}

impl DomIndep {
    /// Fresh gadget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cycle 1: compute and register the blinded cross-domain terms.
    pub fn compute(&mut self, x: MaskedBit, y: MaskedBit, rng: &mut MaskRng) {
        let r = rng.bit();
        self.cross0 = (x.s0 & y.s1) ^ r;
        self.cross1 = (x.s1 & y.s0) ^ r;
        self.inner0 = x.s0 & y.s0;
        self.inner1 = x.s1 & y.s1;
        self.loaded = true;
    }

    /// Cycle 2: recombine.
    ///
    /// # Panics
    ///
    /// Panics when called before [`DomIndep::compute`].
    pub fn output(&self) -> MaskedBit {
        assert!(self.loaded, "DOM output read before compute");
        MaskedBit { s0: self.inner0 ^ self.cross0, s1: self.inner1 ^ self.cross1 }
    }

    /// Both cycles at once (functional use).
    pub fn and(x: MaskedBit, y: MaskedBit, rng: &mut MaskRng) -> MaskedBit {
        let mut g = Self::new();
        g.compute(x, y, rng);
        g.output()
    }
}

/// Software model of a DOM-dep AND: operand `y` is first re-masked with
/// two fresh bits so it is independent of `x`, then DOM-indep applies
/// with the third.
pub fn dom_dep_and(x: MaskedBit, y: MaskedBit, rng: &mut MaskRng) -> MaskedBit {
    let b0 = rng.bit();
    let b1 = rng.bit();
    let y_blinded = MaskedBit { s0: y.s0 ^ b0 ^ b1, s1: y.s1 ^ b0 ^ b1 };
    DomIndep::and(x, y_blinded, rng)
}

/// Netlist generator for DOM-indep. `r` is the fresh-randomness net;
/// the two domain-crossing registers are plain DFFs.
pub fn build_dom_indep(n: &mut Netlist, io: AndInputs, r: NetId) -> AndOutputs {
    let inner0 = n.and2(io.x0, io.y0);
    let inner1 = n.and2(io.x1, io.y1);
    let c0 = n.and2(io.x0, io.y1);
    let c0r = n.xor2(c0, r);
    let c0q = n.dff(c0r);
    let c1 = n.and2(io.x1, io.y0);
    let c1r = n.xor2(c1, r);
    let c1q = n.dff(c1r);
    AndOutputs { z0: n.xor2(inner0, c0q), z1: n.xor2(inner1, c1q) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_netlist::Evaluator;

    #[test]
    fn dom_indep_correct_for_all_sharings() {
        let mut rng = MaskRng::new(61);
        for bits in 0..16u8 {
            let x = MaskedBit { s0: bits & 1 != 0, s1: bits & 2 != 0 };
            let y = MaskedBit { s0: bits & 4 != 0, s1: bits & 8 != 0 };
            for _ in 0..4 {
                assert_eq!(DomIndep::and(x, y, &mut rng).unmask(), x.unmask() & y.unmask());
            }
        }
    }

    #[test]
    fn dom_dep_correct_for_all_sharings() {
        let mut rng = MaskRng::new(62);
        for bits in 0..16u8 {
            let x = MaskedBit { s0: bits & 1 != 0, s1: bits & 2 != 0 };
            let y = MaskedBit { s0: bits & 4 != 0, s1: bits & 8 != 0 };
            for _ in 0..4 {
                assert_eq!(dom_dep_and(x, y, &mut rng).unmask(), x.unmask() & y.unmask());
            }
        }
    }

    #[test]
    #[should_panic(expected = "before compute")]
    fn output_before_compute_panics() {
        let g = DomIndep::new();
        let _ = g.output();
    }

    #[test]
    fn netlist_two_cycle_behaviour() {
        let mut n = Netlist::new("dom");
        let io = AndInputs {
            x0: n.input("x0"),
            x1: n.input("x1"),
            y0: n.input("y0"),
            y1: n.input("y1"),
        };
        let r = n.input("r");
        let out = build_dom_indep(&mut n, io, r);
        n.output("z0", out.z0);
        n.output("z1", out.z1);
        n.validate().unwrap();

        let mut ev = Evaluator::new(&n).unwrap();
        let mut rng = MaskRng::new(63);
        for _ in 0..32 {
            let (xv, yv) = (rng.bit(), rng.bit());
            let x = MaskedBit::mask(xv, &mut rng);
            let y = MaskedBit::mask(yv, &mut rng);
            let rv = rng.bit();
            ev.reset();
            ev.set_input(io.x0, x.s0);
            ev.set_input(io.x1, x.s1);
            ev.set_input(io.y0, y.s0);
            ev.set_input(io.y1, y.s1);
            ev.set_input(r, rv);
            ev.clock(&n); // cross terms registered
            ev.settle(&n);
            let z = ev.value(out.z0) ^ ev.value(out.z1);
            assert_eq!(z, xv & yv);
        }
    }

    /// DOM's defining property: with fresh r, each output share is
    /// uniform and independent of the unshared inputs.
    #[test]
    fn output_share_uniform() {
        let mut rng = MaskRng::new(64);
        let mut ones = 0u32;
        let n = 20_000;
        for _ in 0..n {
            let x = MaskedBit::mask(true, &mut rng);
            let y = MaskedBit::mask(true, &mut rng);
            ones += DomIndep::and(x, y, &mut rng).s0 as u32;
        }
        let p = ones as f64 / n as f64;
        assert!((p - 0.5).abs() < 0.02, "DOM output share must be uniform: {p}");
    }
}
