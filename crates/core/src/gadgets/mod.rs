//! Masked gadgets: software models and netlist generators.
//!
//! Every gadget comes in two forms:
//!
//! 1. a **software model** operating on [`crate::MaskedBit`]s — used for
//!    functional verification and for the fast cycle-accurate DES cores;
//! 2. a **netlist generator** emitting `gm-netlist` gates — used for area
//!    and timing (Table III) and for gate-level glitch simulation.
//!
//! The paper’s gadgets: [`mod@sec_and2`] (the randomness-free AND, Eq. 2),
//! [`sec_and2_ff`] (internal flip-flop, Fig. 2), [`sec_and2_pd`]
//! (path-delayed inputs, Fig. 3), plus [`xor`]/[`refresh`] linear gadgets.
//!
//! Baselines the paper measures against: [`trichina`] (Eq. 1),
//! [`dom`] (DOM-indep and DOM-dep), and a 3-share [`ti`] AND.

pub mod dom;
pub mod refresh;
pub mod sec_and2;
pub mod sec_and2_ff;
pub mod sec_and2_pd;
pub mod ti;
pub mod trichina;
pub mod xor;

pub use sec_and2::{build_sec_and2, sec_and2};
pub use sec_and2_ff::{build_sec_and2_ff, SecAnd2Ff};
pub use sec_and2_pd::{build_sec_and2_pd, PdConfig};

use gm_netlist::NetId;

/// The four nets of one masked operand pair `(x₀, x₁, y₀, y₁)` feeding an
/// AND gadget netlist.
#[derive(Debug, Clone, Copy)]
pub struct AndInputs {
    /// Share 0 of `x`.
    pub x0: NetId,
    /// Share 1 of `x`.
    pub x1: NetId,
    /// Share 0 of `y`.
    pub y0: NetId,
    /// Share 1 of `y`.
    pub y1: NetId,
}

/// The two output-share nets of an AND gadget netlist.
#[derive(Debug, Clone, Copy)]
pub struct AndOutputs {
    /// Share 0 of `z = x·y`.
    pub z0: NetId,
    /// Share 1 of `z`.
    pub z1: NetId,
}
