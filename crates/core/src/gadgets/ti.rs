//! Three-share Threshold Implementation (TI) AND — the other established
//! glitch-resistant baseline the paper positions itself against.
//!
//! The classic first-order TI multiplication over 3 shares
//! (`x = x₀⊕x₁⊕x₂`, likewise `y`):
//!
//! ```text
//! z₀ = x₁y₁ ⊕ x₁y₂ ⊕ x₂y₁
//! z₁ = x₂y₂ ⊕ x₂y₀ ⊕ x₀y₂
//! z₂ = x₀y₀ ⊕ x₀y₁ ⊕ x₁y₀
//! ```
//!
//! Each output share omits one input share index (*non-completeness*), so
//! even glitch-extended probes on one output never see all shares of an
//! input. The price: 3 shares everywhere (≥1.5× datapath area vs 2-share
//! schemes) and a uniformity repair via fresh masks for composition.

use crate::rng::MaskRng;
use gm_netlist::{NetId, Netlist};

/// A sensitive bit in three Boolean shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shared3 {
    /// The shares; value = s\[0\] ⊕ s\[1\] ⊕ s\[2\].
    pub s: [bool; 3],
}

impl Shared3 {
    /// Freshly share `value` with two random masks.
    pub fn mask(value: bool, rng: &mut MaskRng) -> Self {
        let m0 = rng.bit();
        let m1 = rng.bit();
        Shared3 { s: [m0, m1, value ^ m0 ^ m1] }
    }

    /// Recombine.
    pub fn unmask(self) -> bool {
        self.s[0] ^ self.s[1] ^ self.s[2]
    }

    /// Share-wise XOR.
    pub fn xor(self, o: Shared3) -> Self {
        Shared3 { s: [self.s[0] ^ o.s[0], self.s[1] ^ o.s[1], self.s[2] ^ o.s[2]] }
    }
}

/// Software model of the 3-share TI AND.
pub fn ti_and(x: Shared3, y: Shared3) -> Shared3 {
    let z0 = (x.s[1] & y.s[1]) ^ (x.s[1] & y.s[2]) ^ (x.s[2] & y.s[1]);
    let z1 = (x.s[2] & y.s[2]) ^ (x.s[2] & y.s[0]) ^ (x.s[0] & y.s[2]);
    let z2 = (x.s[0] & y.s[0]) ^ (x.s[0] & y.s[1]) ^ (x.s[1] & y.s[0]);
    Shared3 { s: [z0, z1, z2] }
}

/// Netlist generator: three non-complete component functions, each
/// followed by the TI register stage (glitch barrier).
pub fn build_ti_and(n: &mut Netlist, x: [NetId; 3], y: [NetId; 3]) -> [NetId; 3] {
    let mut outs = [NetId(0); 3];
    for (i, out) in outs.iter_mut().enumerate() {
        // Component i uses share indices (i+1, i+2) mod 3 per the classic
        // scheme above (component 0 omits index 0, etc.).
        let a = (i + 1) % 3;
        let b = (i + 2) % 3;
        let p1 = n.and2(x[a], y[a]);
        let p2 = n.and2(x[a], y[b]);
        let p3 = n.and2(x[b], y[a]);
        let t = n.xor2(p1, p2);
        let comb = n.xor2(t, p3);
        *out = n.dff(comb);
    }
    outs
}

/// Non-completeness check on a TI netlist: no output cone may contain all
/// three shares of one input. Returns true when the property holds.
pub fn check_non_completeness(n: &Netlist, x: [NetId; 3], y: [NetId; 3], outs: [NetId; 3]) -> bool {
    outs.iter().all(|&o| {
        let cone = input_cone(n, o);
        let xs = x.iter().filter(|i| cone.contains(i)).count();
        let ys = y.iter().filter(|i| cone.contains(i)).count();
        xs < 3 && ys < 3
    })
}

fn input_cone(n: &Netlist, net: NetId) -> std::collections::HashSet<NetId> {
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![net];
    while let Some(cur) = stack.pop() {
        if !seen.insert(cur) {
            continue;
        }
        if let gm_netlist::netlist::Driver::Gate(g) = n.driver(cur) {
            for &i in &n.gate(g).inputs {
                stack.push(i);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_roundtrip() {
        let mut rng = MaskRng::new(71);
        for v in [false, true] {
            for _ in 0..32 {
                assert_eq!(Shared3::mask(v, &mut rng).unmask(), v);
            }
        }
    }

    /// Exhaustive over all 64 share assignments.
    #[test]
    fn ti_and_correct_for_all_sharings() {
        for bits in 0..64u8 {
            let x = Shared3 { s: [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0] };
            let y = Shared3 { s: [bits & 8 != 0, bits & 16 != 0, bits & 32 != 0] };
            assert_eq!(ti_and(x, y).unmask(), x.unmask() & y.unmask(), "bits {bits:06b}");
        }
    }

    /// Algebraic non-completeness: component i must not reference share i.
    #[test]
    fn model_is_non_complete() {
        // Flip share 0 of x with all else fixed: component 0 must not change.
        for bits in 0..32u8 {
            let mut x = Shared3 { s: [false, bits & 1 != 0, bits & 2 != 0] };
            let y = Shared3 { s: [bits & 4 != 0, bits & 8 != 0, bits & 16 != 0] };
            let z_a = ti_and(x, y);
            x.s[0] = true;
            let z_b = ti_and(x, y);
            assert_eq!(z_a.s[0], z_b.s[0], "component 0 depends on x0!");
        }
    }

    #[test]
    fn netlist_non_complete_and_correct() {
        let mut n = Netlist::new("ti");
        let x = [n.input("x0"), n.input("x1"), n.input("x2")];
        let y = [n.input("y0"), n.input("y1"), n.input("y2")];
        let outs = build_ti_and(&mut n, x, y);
        for (i, &o) in outs.iter().enumerate() {
            n.output(format!("z{i}"), o);
        }
        n.validate().unwrap();
        assert!(check_non_completeness(&n, x, y, outs));

        let mut ev = gm_netlist::Evaluator::new(&n).unwrap();
        for bits in 0..64u8 {
            let xs = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let ys = [bits & 8 != 0, bits & 16 != 0, bits & 32 != 0];
            for i in 0..3 {
                ev.set_input(x[i], xs[i]);
                ev.set_input(y[i], ys[i]);
            }
            ev.clock(&n); // register stage
            let z = ev.value(outs[0]) ^ ev.value(outs[1]) ^ ev.value(outs[2]);
            let want = (xs[0] ^ xs[1] ^ xs[2]) & (ys[0] ^ ys[1] ^ ys[2]);
            assert_eq!(z, want, "bits {bits:06b}");
        }
    }
}
