//! `secAND2-PD` (paper §II-D, Fig. 3): `secAND2` with **path-delayed**
//! inputs instead of a flip-flop.
//!
//! Each input travels through zero or more *DelayUnits* (chains of
//! LUT-buffers, §V) so that within a single clock cycle the arrival order
//! is forced to
//!
//! ```text
//! y₀  →  x₀, x₁  →  y₁
//! ```
//!
//! `y₀` first protects the *previous* computation's unshared `n`, `y₁`
//! last protects the *current* one — no reset needed, single-cycle
//! latency. The security knob is the DelayUnit size: too few LUTs and
//! per-event jitter reorders arrivals (the Fig. 15 sweep).

use super::{AndInputs, AndOutputs};
use crate::share::MaskedBit;
use gm_netlist::Netlist;

/// Physical configuration of a `secAND2-PD` instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PdConfig {
    /// Number of delay elements (LUT-buffers) per DelayUnit. The paper
    /// finds 10 optimal on Spartan-6; 1 leaks visibly (Fig. 15a).
    pub unit_luts: usize,
}

impl PdConfig {
    /// The paper's optimal configuration (10 LUTs per DelayUnit).
    pub const OPTIMAL: PdConfig = PdConfig { unit_luts: 10 };

    /// The smallest configuration (1 LUT) — Fig. 15a's leaky strawman.
    pub const MINIMAL: PdConfig = PdConfig { unit_luts: 1 };
}

impl Default for PdConfig {
    fn default() -> Self {
        PdConfig::OPTIMAL
    }
}

/// Functional (single-cycle) software model — identical to `secAND2`;
/// the path delays only affect *timing*, never the computed value.
pub fn sec_and2_pd(x: MaskedBit, y: MaskedBit) -> MaskedBit {
    crate::gadgets::sec_and2(x, y)
}

/// Netlist generator for `secAND2-PD` (Fig. 3).
///
/// Delay assignment per the figure: `y₀` direct (0 DelayUnits), `x₀` and
/// `x₁` one DelayUnit, `y₁` two DelayUnits. Returns the output shares;
/// the delayed input nets stay internal.
pub fn build_sec_and2_pd(n: &mut Netlist, io: AndInputs, cfg: PdConfig) -> AndOutputs {
    let x0d = n.delay_chain(io.x0, cfg.unit_luts);
    let x1d = n.delay_chain(io.x1, cfg.unit_luts);
    let y1d = n.delay_chain(io.y1, 2 * cfg.unit_luts);
    super::sec_and2::build_sec_and2(n, AndInputs { x0: x0d, x1: x1d, y0: io.y0, y1: y1d })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::MaskRng;
    use gm_netlist::{Evaluator, GateKind};
    use gm_sim::power::NullSink;
    use gm_sim::{DelayModel, Simulator};

    #[test]
    fn functional_equivalence_with_sec_and2() {
        for bits in 0..16u8 {
            let x = MaskedBit { s0: bits & 1 != 0, s1: bits & 2 != 0 };
            let y = MaskedBit { s0: bits & 4 != 0, s1: bits & 8 != 0 };
            assert_eq!(sec_and2_pd(x, y).unmask(), x.unmask() & y.unmask());
        }
    }

    fn build(cfg: PdConfig) -> (Netlist, AndInputs, AndOutputs) {
        let mut n = Netlist::new("secand2pd");
        let io = AndInputs {
            x0: n.input("x0"),
            x1: n.input("x1"),
            y0: n.input("y0"),
            y1: n.input("y1"),
        };
        let out = build_sec_and2_pd(&mut n, io, cfg);
        n.output("z0", out.z0);
        n.output("z1", out.z1);
        n.validate().unwrap();
        (n, io, out)
    }

    #[test]
    fn netlist_is_functionally_correct() {
        let (n, io, out) = build(PdConfig::OPTIMAL);
        let mut ev = Evaluator::new(&n).unwrap();
        let mut rng = MaskRng::new(31);
        for _ in 0..32 {
            let (xv, yv) = (rng.bit(), rng.bit());
            let x = MaskedBit::mask(xv, &mut rng);
            let y = MaskedBit::mask(yv, &mut rng);
            let outs = ev.run_combinational(
                &n,
                &[(io.x0, x.s0), (io.x1, x.s1), (io.y0, y.s0), (io.y1, y.s1)],
            );
            assert_eq!(outs[0] ^ outs[1], xv & yv);
        }
        let _ = out;
    }

    #[test]
    fn delay_unit_sizes_reflected_in_netlist() {
        let (n, _, _) = build(PdConfig { unit_luts: 3 });
        let delay_bufs = n.gates().iter().filter(|g| g.kind == GateKind::DelayBuf).count();
        // x0: 3, x1: 3, y1: 6 = 12 delay buffers.
        assert_eq!(delay_bufs, 12);
    }

    /// Under nominal delays the arrival order at the secAND2 core is
    /// y0 (immediately) → x0/x1 (one unit) → y1 (two units): check by
    /// simulating simultaneous external edges and watching settle times.
    #[test]
    fn arrival_order_enforced() {
        let (n, io, out) = build(PdConfig::OPTIMAL);
        let delays = DelayModel::nominal(&n);
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        // Shares of x = 1 and y = 1 rise simultaneously at the inputs:
        // x = (1, 0), y = (1, 0) — only the s0 nets carry edges.
        sim.schedule(io.x0, 1_000, true);
        sim.schedule(io.y0, 1_000, true);
        let unit_ps = 10 * GateKind::DelayBuf.nominal_delay_ps();
        // Before one DelayUnit has elapsed, the delayed copy of x0 has not
        // reached the core yet, so the product is still computed with the
        // old x0 = 0.
        sim.run_until(1_000 + unit_ps / 2, &mut NullSink);
        assert!(
            !(sim.value(out.z0) ^ sim.value(out.z1)),
            "product must not have updated before the DelayUnit elapsed"
        );
        // After all DelayUnits settle the product is correct.
        sim.run_until(1_000 + 3 * unit_ps, &mut NullSink);
        assert_eq!(sim.value(out.z0) ^ sim.value(out.z1), true & true);
    }
}
