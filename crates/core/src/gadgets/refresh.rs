//! The refresh (re-masking) gadget of Fig. 7.
//!
//! `secAND2` reuses input randomness, so its output sharing is *dependent*
//! on its inputs. Before such a term is XOR-ed with anything sharing those
//! inputs (e.g. `f = x ⊕ y ⊕ x·y`), it must be re-masked with one fresh
//! bit `m`:
//!
//! ```text
//! z₀' = z₀ ⊕ m,   z₁' = z₁ ⊕ m
//! ```
//!
//! This is the only place the paper's designs consume fresh randomness
//! (14 bits per DES round).

use crate::rng::MaskRng;
use crate::share::MaskedBit;
use gm_netlist::{NetId, Netlist};

/// Software model: re-mask `z` with one fresh bit.
pub fn refresh(z: MaskedBit, rng: &mut MaskRng) -> MaskedBit {
    z.refresh(rng)
}

/// Netlist generator: XOR the fresh-mask net `m` into both shares.
pub fn build_refresh(n: &mut Netlist, z: (NetId, NetId), m: NetId) -> (NetId, NetId) {
    (n.xor2(z.0, m), n.xor2(z.1, m))
}

/// The secure composition of Fig. 7: `f = x ⊕ y ⊕ x·y`, with the product
/// term computed by `secAND2` and refreshed before recombination.
pub fn fig7_f(x: MaskedBit, y: MaskedBit, rng: &mut MaskRng) -> MaskedBit {
    let z = crate::gadgets::sec_and2(x, y);
    let z = refresh(z, rng);
    x.xor(y).xor(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_netlist::Evaluator;

    #[test]
    fn refresh_preserves_value() {
        let mut rng = MaskRng::new(41);
        for bits in 0..4u8 {
            let z = MaskedBit { s0: bits & 1 != 0, s1: bits & 2 != 0 };
            assert_eq!(refresh(z, &mut rng).unmask(), z.unmask());
        }
    }

    #[test]
    fn fig7_is_functionally_correct() {
        let mut rng = MaskRng::new(42);
        for (xv, yv) in [(false, false), (false, true), (true, false), (true, true)] {
            for _ in 0..16 {
                let x = MaskedBit::mask(xv, &mut rng);
                let y = MaskedBit::mask(yv, &mut rng);
                assert_eq!(fig7_f(x, y, &mut rng).unmask(), xv ^ yv ^ (xv & yv));
            }
        }
    }

    /// Without refresh, the output sharing of f = x ⊕ y ⊕ x·y is skewed;
    /// with refresh it is uniform. This is the quantitative version of
    /// §III-C.
    #[test]
    fn refresh_restores_uniformity() {
        let mut rng = MaskRng::new(43);
        let mut count_refreshed = 0u32;
        let mut count_raw = 0u32;
        let n = 40_000;
        // Fix the unshared values; look at the distribution of share 0.
        for _ in 0..n {
            let x = MaskedBit::mask(true, &mut rng);
            let y = MaskedBit::mask(true, &mut rng);
            let z = crate::gadgets::sec_and2(x, y);
            let f_raw = x.xor(y).xor(z);
            let f_ref = x.xor(y).xor(refresh(z, &mut rng));
            count_raw += f_raw.s0 as u32;
            count_refreshed += f_ref.s0 as u32;
        }
        let p_raw = count_raw as f64 / n as f64;
        let p_ref = count_refreshed as f64 / n as f64;
        assert!((p_ref - 0.5).abs() < 0.02, "refreshed share must be uniform, got {p_ref}");
        assert!((p_raw - 0.5).abs() > 0.05, "unrefreshed share expected to be biased, got {p_raw}");
    }

    #[test]
    fn netlist_matches_model() {
        let mut n = Netlist::new("refresh");
        let z = (n.input("z0"), n.input("z1"));
        let m = n.input("m");
        let (r0, r1) = build_refresh(&mut n, z, m);
        n.output("r0", r0);
        n.output("r1", r1);
        let mut ev = Evaluator::new(&n).unwrap();
        for bits in 0..8u8 {
            let outs = ev.run_combinational(
                &n,
                &[(z.0, bits & 1 != 0), (z.1, bits & 2 != 0), (m, bits & 4 != 0)],
            );
            assert_eq!(outs[0] ^ outs[1], (bits & 1 != 0) ^ (bits & 2 != 0));
        }
    }
}
