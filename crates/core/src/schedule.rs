//! Input arrival sequences and DelayUnit schedules.
//!
//! §II-B: the order in which the four shares reach a `secAND2` decides
//! whether glitches can leak. This module enumerates the 24 sequences of
//! Table I and encodes the analytic safety rule derived there, plus the
//! generalised chain delay schedules of Table II.

/// One of the four input shares of a 2-input masked AND gadget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputShare {
    /// Share 0 of operand `x`.
    X0,
    /// Share 1 of operand `x`.
    X1,
    /// Share 0 of operand `y`.
    Y0,
    /// Share 1 of operand `y`.
    Y1,
}

impl InputShare {
    /// All four shares in canonical order.
    pub const ALL: [InputShare; 4] =
        [InputShare::X0, InputShare::X1, InputShare::Y0, InputShare::Y1];

    /// True for `x₀`/`x₁`.
    pub fn is_x(self) -> bool {
        matches!(self, InputShare::X0 | InputShare::X1)
    }
}

impl std::fmt::Display for InputShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            InputShare::X0 => "x0",
            InputShare::X1 => "x1",
            InputShare::Y0 => "y0",
            InputShare::Y1 => "y1",
        };
        f.write_str(s)
    }
}

/// An order in which the four shares arrive, one per clock cycle.
pub type ArrivalSequence = [InputShare; 4];

/// All `4! = 24` arrival sequences, in lexicographic order of
/// [`InputShare::ALL`] indices — the experiment space of Table I.
pub fn all_sequences() -> Vec<ArrivalSequence> {
    let mut out = Vec::with_capacity(24);
    let items = InputShare::ALL;
    for a in 0..4 {
        for b in 0..4 {
            if b == a {
                continue;
            }
            for c in 0..4 {
                if c == a || c == b {
                    continue;
                }
                let d = 6 - a - b - c;
                out.push([items[a], items[b], items[c], items[d]]);
            }
        }
    }
    out
}

/// Table I's analytic rule: a sequence leaks **iff `x₀` or `x₁` arrives
/// last**.
///
/// Derivation (§II-B): `secAND2` is not non-complete in `y` — both `z`
/// equations contain `y₀` *and* `y₁`. Starting from all-zero registers,
/// if e.g. `x₀` arrives last and is 1, the output XOR toggles from `¬y₁`
/// to `y₀ ⊕ 1`, a Hamming distance of `y₀ ⊕ y₁ = y`: a glitch there
/// exposes the unshared `y`. If instead `y₀`/`y₁` arrives last, only one
/// gate input changes in the final cycle, every wire toggles at most once
/// (no glitches are possible), and no earlier cycle ever holds both
/// shares of either operand in combinable form.
pub fn predicted_leaky(seq: &ArrivalSequence) -> bool {
    seq[3].is_x()
}

/// DelayUnit assignment for one share in a product chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareDelay {
    /// Which variable of the product (0-based; variable 0 is the chain's
    /// first `x` operand).
    pub var: usize,
    /// Which share (0 or 1).
    pub share: u8,
    /// Delay in DelayUnits.
    pub units: usize,
}

/// The generalised Table II schedule for a chain product of `k`
/// independently-shared variables computed by `k−1` `secAND2-PD` gadgets
/// in a single cycle:
///
/// ```text
/// v_{k−1}.s0 → … → v₁.s0 → v₀.s0, v₀.s1 → v₁.s1 → … → v_{k−1}.s1
/// delay:   0          k−2     k−1    k−1      k            2k−2
/// ```
///
/// For `k = 2` this is Fig. 3 (`y₀ → x₀,x₁ → y₁`); for `k = 3, 4` it is
/// exactly Table II.
///
/// # Panics
///
/// Panics when `k < 2`.
pub fn chain_delay_schedule(k: usize) -> Vec<ShareDelay> {
    assert!(k >= 2, "a product needs at least two variables");
    let mut out = Vec::with_capacity(2 * k);
    // Variable 0 plays the x role: both shares mid-sequence.
    out.push(ShareDelay { var: 0, share: 0, units: k - 1 });
    out.push(ShareDelay { var: 0, share: 1, units: k - 1 });
    for v in 1..k {
        out.push(ShareDelay { var: v, share: 0, units: k - 1 - v });
        out.push(ShareDelay { var: v, share: 1, units: k - 1 + v });
    }
    out
}

/// Largest delay (in DelayUnits) used by [`chain_delay_schedule`]:
/// `2k − 2`. Determines the PD critical path.
pub fn chain_max_units(k: usize) -> usize {
    2 * k - 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn twenty_four_distinct_sequences() {
        let seqs = all_sequences();
        assert_eq!(seqs.len(), 24);
        let distinct: HashSet<_> = seqs.iter().map(|s| format!("{s:?}")).collect();
        assert_eq!(distinct.len(), 24);
        for s in &seqs {
            let shares: HashSet<_> = s.iter().collect();
            assert_eq!(shares.len(), 4, "every share exactly once");
        }
    }

    #[test]
    fn exactly_half_the_sequences_leak() {
        let leaky = all_sequences().iter().filter(|s| predicted_leaky(s)).count();
        assert_eq!(leaky, 12, "12 sequences end in x0/x1");
    }

    #[test]
    fn table_ii_product_of_three() {
        // c0 → b0 → a0,a1 → b1 → c1 with delays 0,1,2,2,3,4.
        let s = chain_delay_schedule(3);
        let get = |var, share| s.iter().find(|d| d.var == var && d.share == share).unwrap().units;
        assert_eq!(get(2, 0), 0); // c0
        assert_eq!(get(1, 0), 1); // b0
        assert_eq!(get(0, 0), 2); // a0
        assert_eq!(get(0, 1), 2); // a1
        assert_eq!(get(1, 1), 3); // b1
        assert_eq!(get(2, 1), 4); // c1
        assert_eq!(chain_max_units(3), 4);
    }

    #[test]
    fn table_ii_product_of_four() {
        // d0 → c0 → b0 → a0,a1 → b1 → c1 → d1: 0,1,2,3,3,4,5,6.
        let s = chain_delay_schedule(4);
        let get = |var, share| s.iter().find(|d| d.var == var && d.share == share).unwrap().units;
        assert_eq!(get(3, 0), 0);
        assert_eq!(get(2, 0), 1);
        assert_eq!(get(1, 0), 2);
        assert_eq!(get(0, 0), 3);
        assert_eq!(get(0, 1), 3);
        assert_eq!(get(1, 1), 4);
        assert_eq!(get(2, 1), 5);
        assert_eq!(get(3, 1), 6);
        assert_eq!(chain_max_units(4), 6);
    }

    #[test]
    fn two_variable_schedule_matches_fig3() {
        let s = chain_delay_schedule(2);
        let get = |var, share| s.iter().find(|d| d.var == var && d.share == share).unwrap().units;
        assert_eq!(get(1, 0), 0); // y0 undelayed
        assert_eq!(get(0, 0), 1); // x0
        assert_eq!(get(0, 1), 1); // x1
        assert_eq!(get(1, 1), 2); // y1 last
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn degenerate_product_panics() {
        let _ = chain_delay_schedule(1);
    }
}
