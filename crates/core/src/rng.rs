//! Masking/refresh randomness source.
//!
//! A thin wrapper over a seeded PRNG with one crucial extra: the **off
//! switch**. The paper validates its measurement setup by re-running every
//! TVLA campaign with the PRNG disabled (all masks zero), which must light
//! up immediately (Fig. 14a, Fig. 17d). [`MaskRng::disabled`] reproduces
//! that mode: every "random" bit is 0, so shares degenerate to
//! `(value, 0)`.

use gm_obs::Counter;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Source of masking and refresh randomness.
#[derive(Debug, Clone)]
pub struct MaskRng {
    rng: SmallRng,
    enabled: bool,
    /// Buffered word for [`MaskRng::bit`]; refilled 64 bits at a time so
    /// per-bit refresh randomness costs one PRNG step per 64 calls.
    bit_buf: u64,
    bits_left: u32,
    words: Counter,
}

impl MaskRng {
    /// An enabled PRNG with the given seed.
    pub fn new(seed: u64) -> Self {
        MaskRng {
            rng: SmallRng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d),
            enabled: true,
            bit_buf: 0,
            bits_left: 0,
            words: Counter::new(),
        }
    }

    /// The paper's "PRNG switched off" sanity-check mode: every bit is 0.
    pub fn disabled() -> Self {
        MaskRng {
            rng: SmallRng::seed_from_u64(0),
            enabled: false,
            bit_buf: 0,
            bits_left: 0,
            words: Counter::new(),
        }
    }

    /// Whether randomness is being produced.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Lifetime count of 64-bit PRNG words drawn from this stream (0
    /// under `obs-off`; forks start their own count at 0).
    pub fn obs_words_drawn(&self) -> u64 {
        self.words.get()
    }

    /// One random bit (always `false` when disabled).
    ///
    /// Bits are served low-to-high from a buffered PRNG word. Gadget
    /// refresh pulls hundreds of single bits per encryption, so paying
    /// one full PRNG step per bit dominated cycle-model campaigns; the
    /// buffer amortises that to one step per 64 bits while keeping the
    /// call-sequence → value mapping deterministic per seed.
    pub fn bit(&mut self) -> bool {
        if !self.enabled {
            return false;
        }
        if self.bits_left == 0 {
            self.words.inc();
            self.bit_buf = self.rng.random();
            self.bits_left = 64;
        }
        let b = self.bit_buf & 1 != 0;
        self.bit_buf >>= 1;
        self.bits_left -= 1;
        b
    }

    /// `n ≤ 64` bits from the **buffered** [`MaskRng::bit`] stream,
    /// packed low-to-high in draw order: bit `k` of the result equals
    /// the `k`-th of `n` successive [`MaskRng::bit`] calls, and the
    /// buffer state afterwards is identical. The bitsliced engines pull
    /// each lane's per-round refresh pool through this in word-sized
    /// gulps instead of hundreds of single-bit calls.
    pub fn bits_buffered(&mut self, n: u32) -> u64 {
        assert!(n <= 64, "at most 64 bits at a time");
        if !self.enabled {
            return 0;
        }
        let mut out = 0u64;
        let mut got = 0u32;
        while got < n {
            if self.bits_left == 0 {
                self.words.inc();
                self.bit_buf = self.rng.random();
                self.bits_left = 64;
            }
            let take = (n - got).min(self.bits_left);
            if take == 64 {
                out = self.bit_buf;
                self.bit_buf = 0;
            } else {
                out |= (self.bit_buf & ((1u64 << take) - 1)) << got;
                self.bit_buf >>= take;
            }
            self.bits_left -= take;
            got += take;
        }
        out
    }

    /// `n ≤ 64` random bits in the low positions.
    ///
    /// Always draws a fresh PRNG word; the [`MaskRng::bit`] buffer is
    /// left untouched.
    pub fn bits(&mut self, n: u32) -> u64 {
        assert!(n <= 64, "at most 64 bits at a time");
        if !self.enabled || n == 0 {
            return 0;
        }
        self.words.inc();
        let raw: u64 = self.rng.random();
        if n == 64 {
            raw
        } else {
            raw & ((1u64 << n) - 1)
        }
    }

    /// An independent stream for a worker thread / parallel instance.
    pub fn fork(&self, stream: u64) -> Self {
        if !self.enabled {
            return MaskRng::disabled();
        }
        // Derive a child seed from our own stream deterministically.
        let mut rng = self.rng.clone();
        let base: u64 = rng.random();
        MaskRng::new(base ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_all_zero() {
        let mut r = MaskRng::disabled();
        assert!(!r.is_enabled());
        assert!((0..100).all(|_| !r.bit()));
        assert_eq!(r.bits(64), 0);
    }

    #[test]
    fn enabled_is_balanced() {
        let mut r = MaskRng::new(1);
        let ones = (0..10_000).filter(|_| r.bit()).count();
        assert!((4_500..5_500).contains(&ones), "ones={ones}");
    }

    #[test]
    fn bits_masked_to_width() {
        let mut r = MaskRng::new(2);
        for _ in 0..100 {
            assert!(r.bits(6) < 64);
        }
        assert_eq!(r.bits(0), 0);
    }

    #[test]
    fn deterministic_and_fork_independent() {
        let mut a = MaskRng::new(7);
        let mut b = MaskRng::new(7);
        assert!((0..64).all(|_| a.bit() == b.bit()));
        let mut f0 = MaskRng::new(7).fork(0);
        let mut f1 = MaskRng::new(7).fork(1);
        let same = (0..64).filter(|_| f0.bit() == f1.bit()).count();
        assert!(same < 56, "forked streams should differ");
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn too_many_bits_panics() {
        MaskRng::new(0).bits(65);
    }

    /// `bits_buffered` serves the exact [`MaskRng::bit`] stream: same
    /// values LSB-first, same buffer state afterwards, across refills
    /// and interleaved with fresh-word `bits` draws.
    #[test]
    fn bits_buffered_matches_bit_stream() {
        let mut a = MaskRng::new(31337);
        let mut b = MaskRng::new(31337);
        for round in 0..40u32 {
            let n = [64u32, 32, 1, 17, 63, 5, 64, 40][round as usize % 8];
            let mut want = 0u64;
            for k in 0..n {
                want |= u64::from(a.bit()) << k;
            }
            assert_eq!(b.bits_buffered(n), want, "round {round}, n {n}");
            assert_eq!(a.bits(7), b.bits(7), "fresh-word draws stay in lockstep");
        }
        assert_eq!(a.bits_buffered(0), 0);
        let mut d = MaskRng::disabled();
        assert_eq!(d.bits_buffered(64), 0, "disabled mode stays all-zero");
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn words_drawn_counts_prng_steps() {
        let mut r = MaskRng::new(9);
        for _ in 0..65 {
            r.bit(); // two buffer refills
        }
        r.bits(13); // one fresh word
        assert_eq!(r.obs_words_drawn(), 3);
        assert_eq!(r.fork(1).obs_words_drawn(), 0, "forks start fresh");
        let mut d = MaskRng::disabled();
        d.bit();
        d.bits(64);
        assert_eq!(d.obs_words_drawn(), 0, "disabled mode draws nothing");
    }
}
