//! Lane-parallel (64-way bitsliced) two-share masking primitives.
//!
//! [`LaneBit`] is the transposed counterpart of [`crate::MaskedBit`]:
//! each share is a `u64` whose bit `ℓ` is that share's value in lane
//! `ℓ`, so one word operation advances 64 independent masked
//! evaluations. The share algebra (XOR, NOT-on-one-share, refresh,
//! `secAND2`) is bitwise, hence identical formulas lane-parallel.

use gm_netlist::bitslice::transpose64;

/// Broadcast a boolean to all 64 lanes.
#[inline]
pub fn splat(b: bool) -> u64 {
    if b {
        u64::MAX
    } else {
        0
    }
}

/// One sensitive bit in two Boolean shares, across 64 lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LaneBit {
    /// Share 0, one bit per lane.
    pub s0: u64,
    /// Share 1 (`value ⊕ s0`), one bit per lane.
    pub s1: u64,
}

impl LaneBit {
    /// A public constant, identical in every lane: `(c, 0)`.
    #[inline]
    pub fn constant(c: bool) -> Self {
        LaneBit { s0: splat(c), s1: 0 }
    }

    /// Share `values` (one bit per lane) under per-lane masks `m`.
    #[inline]
    pub fn mask_words(values: u64, m: u64) -> Self {
        LaneBit { s0: m, s1: values ^ m }
    }

    /// The unshared per-lane values (insecure on a device, fine in a
    /// simulator's power model).
    #[inline]
    pub fn unmask(self) -> u64 {
        self.s0 ^ self.s1
    }

    /// Share-wise XOR (linear, always safe).
    #[inline]
    pub fn xor(self, other: LaneBit) -> Self {
        LaneBit { s0: self.s0 ^ other.s0, s1: self.s1 ^ other.s1 }
    }

    /// XOR with a public constant (flips one share in every lane).
    #[inline]
    pub fn xor_const(self, c: bool) -> Self {
        LaneBit { s0: self.s0 ^ splat(c), s1: self.s1 }
    }

    /// Masked NOT (flips one share in every lane).
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn not(self) -> Self {
        self.xor_const(true)
    }

    /// Re-mask with per-lane fresh bits `m` (the refresh gadget of
    /// Fig. 7, lane-parallel).
    #[inline]
    pub fn refresh_with(self, m: u64) -> Self {
        LaneBit { s0: self.s0 ^ m, s1: self.s1 ^ m }
    }
}

/// Lane-parallel `secAND2` (Fig. 2): the same share formulas as
/// [`crate::gadgets::sec_and2`], word-wide —
/// `z₀ = (x₀·y₀) ⊕ (x₀ + ¬y₁)`, `z₁ = (x₁·y₀) ⊕ (x₁ + ¬y₁)`.
#[inline]
pub fn sec_and2_lanes(x: LaneBit, y: LaneBit) -> LaneBit {
    let ny1 = !y.s1;
    LaneBit { s0: (x.s0 & y.s0) ^ (x.s0 | ny1), s1: (x.s1 & y.s0) ^ (x.s1 | ny1) }
}

/// Transpose 64 lane-major words (`src[lane]` = a trace's bits) into
/// bit-major words (`out[bit]` = that bit across lanes). `src` may hold
/// fewer than 64 lanes; missing lanes read as 0.
pub fn lanes_to_bits(src: &[u64], out: &mut [u64; 64]) {
    assert!(src.len() <= 64, "at most 64 lanes");
    out[..src.len()].copy_from_slice(src);
    out[src.len()..].fill(0);
    transpose64(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::sec_and2;
    use crate::{MaskRng, MaskedBit};

    /// The lane gadget agrees with the scalar gadget in every lane, for
    /// random sharings.
    #[test]
    fn sec_and2_lanes_matches_scalar() {
        let mut rng = MaskRng::new(0x1a7e);
        for _ in 0..16 {
            let (x0, x1, y0, y1) = (rng.bits(64), rng.bits(64), rng.bits(64), rng.bits(64));
            let x = LaneBit { s0: x0, s1: x1 };
            let y = LaneBit { s0: y0, s1: y1 };
            let z = sec_and2_lanes(x, y);
            for lane in 0..64 {
                let pick = |w: u64| (w >> lane) & 1 == 1;
                let zs = sec_and2(
                    MaskedBit { s0: pick(x0), s1: pick(x1) },
                    MaskedBit { s0: pick(y0), s1: pick(y1) },
                );
                assert_eq!((pick(z.s0), pick(z.s1)), (zs.s0, zs.s1), "lane {lane}");
            }
            assert_eq!(z.unmask(), (x0 ^ x1) & (y0 ^ y1), "functional AND");
        }
    }

    #[test]
    fn lane_bit_algebra() {
        let mut rng = MaskRng::new(9);
        let v = rng.bits(64);
        let m = rng.bits(64);
        let b = LaneBit::mask_words(v, m);
        assert_eq!(b.unmask(), v);
        assert_eq!(b.not().unmask(), !v);
        assert_eq!(b.refresh_with(rng.bits(64)).unmask(), v);
        assert_eq!(b.xor(LaneBit::constant(true)).unmask(), !v);
        assert_eq!(LaneBit::constant(false).unmask(), 0);
        assert_eq!(LaneBit::constant(true).unmask(), u64::MAX);
    }

    #[test]
    fn lanes_to_bits_partial_tail() {
        let src = [0b101u64, 0b011];
        let mut out = [u64::MAX; 64];
        lanes_to_bits(&src, &mut out);
        assert_eq!(out[0] & 0b11, 0b11); // bit 0: both lanes 1
        assert_eq!(out[1] & 0b11, 0b10); // bit 1: lane 1 only
        assert_eq!(out[2] & 0b11, 0b01); // bit 2: lane 0 only
        assert_eq!(out[3], 0);
        assert_eq!(out[0] >> 2, 0, "absent lanes read as 0");
    }
}
