//! Microbenchmark for the compiled-schedule sweep: times `run_pass` on
//! the fig15-gate PD gadget in isolation, outside the campaign stack.
//!
//! ```text
//! cargo run --release -p gm-core --example sched_micro [passes]
//! ```

use gm_core::gadgets::sec_and2_pd::{build_sec_and2_pd, PdConfig};
use gm_core::gadgets::AndInputs;
use gm_netlist::Netlist;
use gm_sim::{CompiledSchedule, DelayModel, LaneCounting, SchedRunner, SimGraph, LANES};
use std::time::Instant;

fn main() {
    let passes: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let mut n = Netlist::new("pd");
    let io =
        AndInputs { x0: n.input("x0"), x1: n.input("x1"), y0: n.input("y0"), y1: n.input("y1") };
    let out = build_sec_and2_pd(&mut n, io, PdConfig { unit_luts: 3 });
    n.output("z0", out.z0);
    n.output("z1", out.z1);
    n.validate().unwrap();
    let window_ps = (2 * 3u64 * 1_150) * 3 + 30_000;
    let graph = SimGraph::new(&n);
    let delays = DelayModel::with_variation(&n, 0.85, 400.0, 0x5eed ^ (3u64) << 8);
    let stims = [(io.x0, 1_000), (io.x1, 1_000), (io.y0, 1_000), (io.y1, 1_000)];
    let sched = CompiledSchedule::compile(&graph, &delays, &stims).expect("compiles");
    println!("schedule: {} nodes, {} stims", sched.num_nodes(), sched.num_stims());

    let mut runner = SchedRunner::new();
    let mut counting = LaneCounting::default();
    let seeds: Vec<u64> = (0..LANES as u64).collect();
    let mut stim_values = [0u64; 4];
    let mut energy = 0.0f64;
    let mut divergent_total = 0u64;
    // Warm-up.
    for p in 0..passes / 10 + 1 {
        for (s, v) in stim_values.iter_mut().enumerate() {
            *v = (p ^ s as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        runner.run_pass(
            &sched,
            &graph,
            &delays,
            graph.weights(),
            &seeds,
            &stim_values,
            window_ps,
            &mut counting,
        );
    }
    let start = Instant::now();
    for p in 0..passes {
        for (s, v) in stim_values.iter_mut().enumerate() {
            *v = (p ^ s as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        let div = runner.run_pass(
            &sched,
            &graph,
            &delays,
            graph.weights(),
            &seeds,
            &stim_values,
            window_ps,
            &mut counting,
        );
        divergent_total += div.count_ones() as u64;
        energy += counting.weighted.iter().sum::<f64>();
    }
    let dt = start.elapsed().as_secs_f64();
    let traces = passes * LANES as u64;
    println!(
        "{passes} passes ({traces} lanes) in {dt:.3} s: {:.0} ns/pass, {:.1} ns/lane, \
         divergent {:.2}% (checksum {energy:.1})",
        dt * 1e9 / passes as f64,
        dt * 1e9 / traces as f64,
        100.0 * divergent_total as f64 / traces as f64,
    );
}
