//! Property-based tests for the masking core: every gadget computes the
//! right value for *every* sharing, compositions stay correct, and the
//! netlist generators agree with the software models.

use gm_core::analysis::deps::MaskedExpr;
use gm_core::compose::{build_product_chain_pd, build_product_tree_ff, product};
use gm_core::gadgets::dom::{dom_dep_and, DomIndep};
use gm_core::gadgets::sec_and2::{build_sec_and2, sec_and2};
use gm_core::gadgets::ti::{ti_and, Shared3};
use gm_core::gadgets::trichina::trichina_and;
use gm_core::gadgets::AndInputs;
use gm_core::{MaskRng, MaskedBit, MaskedWord};
use gm_netlist::{Evaluator, NetId, Netlist};
use proptest::prelude::*;

fn masked_bit() -> impl Strategy<Value = MaskedBit> {
    (any::<bool>(), any::<bool>()).prop_map(|(s0, s1)| MaskedBit { s0, s1 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// All AND gadgets agree with plain AND for any sharing and any
    /// randomness stream.
    #[test]
    fn every_and_gadget_is_correct(x in masked_bit(), y in masked_bit(), seed in any::<u64>()) {
        let want = x.unmask() & y.unmask();
        let mut rng = MaskRng::new(seed);
        prop_assert_eq!(sec_and2(x, y).unmask(), want);
        prop_assert_eq!(trichina_and(x, y, &mut rng).unmask(), want);
        prop_assert_eq!(DomIndep::and(x, y, &mut rng).unmask(), want);
        prop_assert_eq!(dom_dep_and(x, y, &mut rng).unmask(), want);
    }

    /// TI over 3 shares, for any sharing.
    #[test]
    fn ti_and_correct(xs in any::<[bool; 3]>(), ys in any::<[bool; 3]>()) {
        let x = Shared3 { s: xs };
        let y = Shared3 { s: ys };
        prop_assert_eq!(ti_and(x, y).unmask(), x.unmask() & y.unmask());
    }

    /// Masked products of arbitrary width and sharing.
    #[test]
    fn product_correct(vals in prop::collection::vec(any::<bool>(), 1..8), seed in any::<u64>()) {
        let mut rng = MaskRng::new(seed);
        let bits: Vec<MaskedBit> =
            vals.iter().map(|&v| MaskedBit::mask(v, &mut rng)).collect();
        prop_assert_eq!(product(&bits).unmask(), vals.iter().all(|&v| v));
    }

    /// Refresh never changes the value, for any mask bit.
    #[test]
    fn refresh_value_preserving(b in masked_bit(), m in any::<bool>()) {
        prop_assert_eq!(b.refresh_with(m).unmask(), b.unmask());
    }

    /// MaskedWord XOR/permute/bit extraction are consistent with u64
    /// semantics.
    #[test]
    fn masked_word_semantics(v in any::<u64>(), w in any::<u64>(), seed in any::<u64>(), width in 1u32..=64) {
        let mut rng = MaskRng::new(seed);
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let a = MaskedWord::mask(v & mask, width, &mut rng);
        let b = MaskedWord::mask(w & mask, width, &mut rng);
        prop_assert_eq!(a.unmask(), v & mask);
        prop_assert_eq!(a.xor(b).unmask(), (v ^ w) & mask);
        for i in 0..width.min(8) {
            prop_assert_eq!(a.bit(i).unmask(), (v >> i) & 1 == 1);
        }
        prop_assert_eq!(a.refresh(&mut rng).unmask(), v & mask);
    }

    /// The secAND2 netlist equals the model for any sharing (exhaustive
    /// inputs are covered by unit tests; this crosses with random
    /// generated netlist instances in fresh arenas).
    #[test]
    fn netlist_matches_model(x in masked_bit(), y in masked_bit()) {
        let mut n = Netlist::new("p");
        let io = AndInputs {
            x0: n.input("x0"),
            x1: n.input("x1"),
            y0: n.input("y0"),
            y1: n.input("y1"),
        };
        let out = build_sec_and2(&mut n, io);
        n.output("z0", out.z0);
        n.output("z1", out.z1);
        let mut ev = Evaluator::new(&n).unwrap();
        let outs = ev.run_combinational(
            &n,
            &[(io.x0, x.s0), (io.x1, x.s1), (io.y0, y.s0), (io.y1, y.s1)],
        );
        let want = sec_and2(x, y);
        prop_assert_eq!((outs[0], outs[1]), (want.s0, want.s1));
    }

    /// PD chains of any width compute the product (zero-delay check).
    #[test]
    fn pd_chain_any_width(vals in prop::collection::vec(any::<bool>(), 2..6), seed in any::<u64>(), unit in 1usize..4) {
        let mut n = Netlist::new("chain");
        let vars: Vec<(NetId, NetId)> = (0..vals.len())
            .map(|i| (n.input(format!("a{i}")), n.input(format!("b{i}"))))
            .collect();
        let chain = build_product_chain_pd(&mut n, &vars, unit);
        n.output("z0", chain.out.z0);
        n.output("z1", chain.out.z1);
        let mut rng = MaskRng::new(seed);
        let mut ev = Evaluator::new(&n).unwrap();
        let mut pins = Vec::new();
        for (i, &v) in vals.iter().enumerate() {
            let b = MaskedBit::mask(v, &mut rng);
            pins.push((vars[i].0, b.s0));
            pins.push((vars[i].1, b.s1));
        }
        let outs = ev.run_combinational(&n, &pins);
        prop_assert_eq!(outs[0] ^ outs[1], vals.iter().all(|&v| v));
    }

    /// FF trees of any width have n-1 gadgets and the promised latency.
    #[test]
    fn ff_tree_structure(width in 2usize..9) {
        let mut n = Netlist::new("tree");
        let vars: Vec<(NetId, NetId)> = (0..width)
            .map(|i| (n.input(format!("a{i}")), n.input(format!("b{i}"))))
            .collect();
        let tree = build_product_tree_ff(&mut n, &vars);
        prop_assert_eq!(tree.gadgets, width - 1);
        prop_assert_eq!(tree.latency_cycles, gm_core::compose::ff_tree_latency(width));
        prop_assert!(n.validate().is_ok());
    }

    /// Dependency checker: any expression rejected for a shared variable
    /// is accepted once the AND side is refreshed.
    #[test]
    fn refresh_always_repairs(a in 0u32..4, b in 0u32..4) {
        let bad = MaskedExpr::var(a).xor(MaskedExpr::var(a).and(MaskedExpr::var(b)));
        prop_assert!(bad.check().is_err());
        let good = MaskedExpr::var(a).xor(
            MaskedExpr::var(a).and(MaskedExpr::var(b)).refresh(),
        );
        prop_assert!(good.check().is_ok());
    }

    /// Masking with an enabled RNG yields uniform share 0 (statistical
    /// smoke at the property level: both share values occur).
    #[test]
    fn masking_uses_randomness(seed in any::<u64>()) {
        let mut rng = MaskRng::new(seed);
        let shares: Vec<bool> =
            (0..64).map(|_| MaskedBit::mask(true, &mut rng).s0).collect();
        prop_assert!(shares.iter().any(|&s| s));
        prop_assert!(shares.iter().any(|&s| !s));
    }
}
