//! Compressed sparse row (CSR) adjacency, the flat fanout layout shared
//! by the event simulator and the topological sort.
//!
//! A [`Csr`] maps `num_keys` row keys to variable-length `u32` value
//! lists stored back-to-back in one allocation — two `Vec`s total
//! instead of one `Vec` per key. Rows preserve the insertion order of
//! the pair stream, so a CSR built from `(net, gate)` pairs emitted in
//! gate order reproduces the exact consumer iteration order of the old
//! `Vec<Vec<u32>>` representation.

/// Flat row-compressed `key -> [u32]` adjacency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[k]..offsets[k + 1]` indexes `values` for row `k`.
    offsets: Vec<u32>,
    values: Vec<u32>,
}

impl Csr {
    /// Build from a `(key, value)` pair list with counting sort; per-row
    /// value order equals pair order. Every key must be `< num_keys`.
    pub fn from_pairs(num_keys: usize, pairs: &[(u32, u32)]) -> Csr {
        let mut offsets = vec![0u32; num_keys + 1];
        for &(k, _) in pairs {
            offsets[k as usize + 1] += 1;
        }
        for k in 0..num_keys {
            offsets[k + 1] += offsets[k];
        }
        let mut cursor: Vec<u32> = offsets[..num_keys].to_vec();
        let mut values = vec![0u32; pairs.len()];
        for &(k, v) in pairs {
            let c = &mut cursor[k as usize];
            values[*c as usize] = v;
            *c += 1;
        }
        Csr { offsets, values }
    }

    /// The values of row `key`.
    #[inline]
    pub fn row(&self, key: usize) -> &[u32] {
        &self.values[self.offsets[key] as usize..self.offsets[key + 1] as usize]
    }

    /// Index range of row `key` into the flat value array — for indexing
    /// payload arrays built parallel to the values.
    #[inline]
    pub fn row_range(&self, key: usize) -> std::ops::Range<usize> {
        self.offsets[key] as usize..self.offsets[key + 1] as usize
    }

    /// Number of rows.
    pub fn num_keys(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored values across all rows.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_preserve_pair_order() {
        let csr = Csr::from_pairs(4, &[(2, 9), (0, 5), (2, 4), (3, 1), (2, 9)]);
        assert_eq!(csr.row(0), &[5]);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.row(2), &[9, 4, 9]);
        assert_eq!(csr.row(3), &[1]);
        assert_eq!(csr.num_keys(), 4);
        assert_eq!(csr.num_values(), 5);
    }

    #[test]
    fn matches_vec_of_vecs_on_random_pairs() {
        // Deterministic pseudo-random pair stream (no RNG dep here).
        let mut state = 0x1234_5678_u64;
        let mut pairs = Vec::new();
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = ((state >> 33) % 37) as u32;
            let v = (state >> 20) as u32 & 0xffff;
            pairs.push((k, v));
        }
        let csr = Csr::from_pairs(37, &pairs);
        let mut reference: Vec<Vec<u32>> = vec![Vec::new(); 37];
        for &(k, v) in &pairs {
            reference[k as usize].push(v);
        }
        for (k, row) in reference.iter().enumerate() {
            assert_eq!(csr.row(k), row.as_slice());
        }
    }

    #[test]
    fn empty_and_trailing_rows() {
        let csr = Csr::from_pairs(3, &[]);
        assert_eq!(csr.row(0), &[] as &[u32]);
        assert_eq!(csr.row(2), &[] as &[u32]);
        let csr = Csr::from_pairs(2, &[(0, 1)]);
        assert_eq!(csr.row(1), &[] as &[u32]);
    }
}
