//! # gm-netlist
//!
//! Gate-level netlist intermediate representation used by every other crate
//! in the `glitchmask` workspace.
//!
//! The crate models the two implementation targets of the paper:
//!
//! * an **ASIC**-flavoured view: every gate carries an area weight in gate
//!   equivalents (GE, NAND2 = 1.0) loosely calibrated against the
//!   NanGate 45 nm Open Cell Library that the paper synthesises with, and
//! * an **FPGA**-flavoured view: a LUT-packing estimate plus a dedicated
//!   [`GateKind::DelayBuf`] cell that corresponds to the paper's
//!   "LUT wired as a buffer" delay element (Section V).
//!
//! On top of the IR the crate provides:
//!
//! * a hierarchical [`Netlist`] builder with module scoping,
//! * structural validation (single driver per net, no combinational loops),
//! * zero-delay functional evaluation ([`eval`]) for correctness testing,
//! * static timing analysis ([`timing`]) giving critical paths and maximum
//!   clock frequency (Table III's "Max Freq." column), and
//! * area reporting ([`area`]) giving GE totals and FF/LUT counts
//!   (Table III's "ASIC \[GEs\]" and "FPGA \[FF/LUT\]" columns).
//!
//! The event-driven glitch simulator in `gm-sim` executes these netlists
//! with real transport delays; this crate itself is timing-model agnostic
//! beyond the per-kind nominal delays in [`GateKind::nominal_delay_ps`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod bitslice;
pub mod csr;
pub mod error;
pub mod eval;
pub mod gate;
pub mod netlist;
pub mod opt;
pub mod stats;
pub mod timing;
pub mod topo;
pub mod verilog;

pub use area::AreaReport;
pub use bitslice::BitEvaluator;
pub use csr::Csr;
pub use error::NetlistError;
pub use eval::Evaluator;
pub use gate::{DffConfig, Gate, GateId, GateKind};
pub use netlist::{NetId, Netlist};
pub use opt::{optimize, OptOptions, OptStats};
pub use timing::TimingReport;
pub use verilog::to_verilog;
