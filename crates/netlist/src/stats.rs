//! Miscellaneous netlist statistics used in reports and sanity checks.

use crate::netlist::{Driver, Netlist};

/// Fan-out of each net (number of gate input pins it feeds).
pub fn fanout(n: &Netlist) -> Vec<usize> {
    let mut fo = vec![0usize; n.num_nets()];
    for g in n.gates() {
        for &i in &g.inputs {
            fo[i.index()] += 1;
        }
    }
    fo
}

/// Logic depth (in gate levels, delay-agnostic) of each net.
///
/// Primary inputs, constants, and FF outputs are depth 0.
pub fn logic_depth(n: &Netlist) -> Result<Vec<usize>, crate::NetlistError> {
    let order = crate::topo::combinational_order(n)?;
    let mut depth = vec![0usize; n.num_nets()];
    for gid in order {
        let g = n.gate(gid);
        let d = g.inputs.iter().map(|i| depth[i.index()]).max().unwrap_or(0);
        depth[g.output.index()] = d + 1;
    }
    Ok(depth)
}

/// Maximum combinational logic depth of the design.
pub fn max_depth(n: &Netlist) -> Result<usize, crate::NetlistError> {
    Ok(logic_depth(n)?.into_iter().max().unwrap_or(0))
}

/// Nets that drive nothing and are not primary outputs (dangling logic).
pub fn dangling_nets(n: &Netlist) -> Vec<crate::NetId> {
    let fo = fanout(n);
    let outs: std::collections::HashSet<_> = n.outputs().iter().map(|(_, o)| *o).collect();
    (0..n.num_nets() as u32)
        .map(crate::NetId)
        .filter(|id| {
            fo[id.index()] == 0 && !outs.contains(id) && !matches!(n.driver(*id), Driver::None)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    #[test]
    fn fanout_counts_pins() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let x = n.and2(a, a); // a feeds two pins
        n.output("x", x);
        assert_eq!(fanout(&n)[a.index()], 2);
    }

    #[test]
    fn depth_of_chain() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let d = n.delay_chain(a, 4);
        n.output("d", d);
        assert_eq!(max_depth(&n).unwrap(), 4);
    }

    #[test]
    fn dangling_detected() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let used = n.inv(a);
        let dangling = n.inv(a);
        let y = n.buf(used);
        n.output("y", y);
        let d = dangling_nets(&n);
        assert_eq!(d, vec![dangling]);
    }
}
