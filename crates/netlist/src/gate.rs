//! Gate (standard cell) definitions: logic, area, and nominal timing.

use crate::netlist::NetId;

/// Identifier of a gate inside a [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub u32);

impl GateId {
    /// Index into the netlist's gate arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Configuration of a D flip-flop cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DffConfig {
    /// The FF samples its `d` input only while the `enable` input is high.
    pub has_enable: bool,
    /// The FF clears to 0 while the `reset` input is high (synchronous).
    pub has_reset: bool,
}

/// The standard-cell library.
///
/// Area weights are in gate equivalents (GE, NAND2 = 1.0) in the style of
/// the NanGate 45 nm Open Cell Library used by the paper for its ASIC
/// numbers. Nominal delays are in picoseconds and are calibrated so that
/// the two DES cores land near the paper's reported maximum frequencies
/// (~183 MHz for the secAND2-FF core, ~21 MHz for the secAND2-PD core whose
/// critical path runs through 4 DelayUnits of 10 [`GateKind::DelayBuf`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// Delay element: a LUT wired as a buffer on FPGA (Section V of the
    /// paper), or a chain of inverters on ASIC. Logically an identity.
    DelayBuf,
    /// 2-input AND.
    And2,
    /// 2-input NAND.
    Nand2,
    /// 2-input OR.
    Or2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer; inputs are `[sel, a, b]`, output `a` when `sel = 0`.
    Mux2,
    /// D flip-flop; inputs are `[d]`, then `enable` and/or `reset` when
    /// configured. Clocking is handled by the simulator, not by
    /// combinational evaluation.
    Dff(DffConfig),
}

impl GateKind {
    /// Number of input pins this cell expects.
    pub fn num_inputs(self) -> usize {
        match self {
            GateKind::Inv | GateKind::Buf | GateKind::DelayBuf => 1,
            GateKind::And2
            | GateKind::Nand2
            | GateKind::Or2
            | GateKind::Nor2
            | GateKind::Xor2
            | GateKind::Xnor2 => 2,
            GateKind::Mux2 => 3,
            GateKind::Dff(cfg) => 1 + usize::from(cfg.has_enable) + usize::from(cfg.has_reset),
        }
    }

    /// True for sequential cells (flip-flops).
    pub fn is_sequential(self) -> bool {
        matches!(self, GateKind::Dff(_))
    }

    /// Combinational function of the cell.
    ///
    /// For a [`GateKind::Dff`] this returns the *current* state unchanged
    /// (`inputs[0]` is ignored); register updates are performed by the
    /// clocked simulation harness.
    ///
    /// # Panics
    ///
    /// Panics when `inputs.len() != self.num_inputs()`.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.num_inputs(),
            "{self:?} expects {} inputs, got {}",
            self.num_inputs(),
            inputs.len()
        );
        match self {
            GateKind::Inv => !inputs[0],
            GateKind::Buf | GateKind::DelayBuf => inputs[0],
            GateKind::And2 => inputs[0] & inputs[1],
            GateKind::Nand2 => !(inputs[0] & inputs[1]),
            GateKind::Or2 => inputs[0] | inputs[1],
            GateKind::Nor2 => !(inputs[0] | inputs[1]),
            GateKind::Xor2 => inputs[0] ^ inputs[1],
            GateKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            GateKind::Mux2 => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
            // Registers hold their value under combinational evaluation.
            GateKind::Dff(_) => false,
        }
    }

    /// Compute the next state of a [`GateKind::Dff`] at a clock edge.
    ///
    /// `inputs` follows the pin order `[d, enable?, reset?]`.
    pub fn dff_next(self, current: bool, inputs: &[bool]) -> bool {
        let GateKind::Dff(cfg) = self else {
            panic!("dff_next called on combinational cell {self:?}")
        };
        let mut idx = 1;
        let enabled = if cfg.has_enable {
            let e = inputs[idx];
            idx += 1;
            e
        } else {
            true
        };
        let reset = if cfg.has_reset { inputs[idx] } else { false };
        if reset {
            false
        } else if enabled {
            inputs[0]
        } else {
            current
        }
    }

    /// Number of cell classes distinguished by [`GateKind::class_index`].
    pub const NUM_CLASSES: usize = 11;

    /// Class names, indexed by [`GateKind::class_index`].
    pub const CLASS_NAMES: [&'static str; Self::NUM_CLASSES] =
        ["inv", "buf", "delaybuf", "and2", "nand2", "or2", "nor2", "xor2", "xnor2", "mux2", "dff"];

    /// Dense cell-class index (all [`GateKind::Dff`] configurations
    /// collapse to one class), used by per-gate-class census counters.
    #[inline(always)]
    pub fn class_index(self) -> usize {
        match self {
            GateKind::Inv => 0,
            GateKind::Buf => 1,
            GateKind::DelayBuf => 2,
            GateKind::And2 => 3,
            GateKind::Nand2 => 4,
            GateKind::Or2 => 5,
            GateKind::Nor2 => 6,
            GateKind::Xor2 => 7,
            GateKind::Xnor2 => 8,
            GateKind::Mux2 => 9,
            GateKind::Dff(_) => 10,
        }
    }

    /// Area weight in gate equivalents (NAND2 = 1.0).
    pub fn area_ge(self) -> f64 {
        match self {
            GateKind::Inv => 0.67,
            GateKind::Buf => 1.00,
            // The paper sizes an ASIC DelayUnit as 120 inverters; a single
            // DelayBuf is one inverter-pair-equivalent worth of delay cell.
            GateKind::DelayBuf => 8.04, // 12 inverters (see `delay_unit` docs)
            GateKind::And2 | GateKind::Or2 => 1.33,
            GateKind::Nand2 | GateKind::Nor2 => 1.00,
            GateKind::Xor2 | GateKind::Xnor2 => 2.33,
            GateKind::Mux2 => 2.33,
            GateKind::Dff(cfg) => {
                4.67 + if cfg.has_enable { 1.33 } else { 0.0 }
                    + if cfg.has_reset { 0.67 } else { 0.0 }
            }
        }
    }

    /// Nominal propagation delay in picoseconds.
    ///
    /// These model FPGA LUT levels plus local routing, which is why they
    /// are much larger than raw 45 nm cell delays; relative magnitudes are
    /// what matters for glitch behaviour.
    pub fn nominal_delay_ps(self) -> u64 {
        match self {
            GateKind::Inv => 150,
            GateKind::Buf => 175,
            // One LUT-as-buffer including its routing detour. Ten of these
            // form the paper's optimal DelayUnit.
            GateKind::DelayBuf => 1150,
            GateKind::And2 | GateKind::Nand2 => 350,
            GateKind::Or2 | GateKind::Nor2 => 350,
            GateKind::Xor2 | GateKind::Xnor2 => 450,
            GateKind::Mux2 => 450,
            // Clk-to-Q delay.
            GateKind::Dff(_) => 225,
        }
    }
}

/// A gate instance inside a [`crate::Netlist`].
#[derive(Debug, Clone)]
pub struct Gate {
    /// Cell type.
    pub kind: GateKind,
    /// Input nets in pin order.
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
    /// Index into the netlist's module-path table (for hierarchy reports).
    pub module: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables() {
        let f = false;
        let t = true;
        assert!(GateKind::Inv.eval(&[f]));
        assert!(!GateKind::Inv.eval(&[t]));
        assert!(GateKind::Buf.eval(&[t]));
        assert!(GateKind::DelayBuf.eval(&[t]));
        assert!(!GateKind::DelayBuf.eval(&[f]));
        for a in [f, t] {
            for b in [f, t] {
                assert_eq!(GateKind::And2.eval(&[a, b]), a & b);
                assert_eq!(GateKind::Nand2.eval(&[a, b]), !(a & b));
                assert_eq!(GateKind::Or2.eval(&[a, b]), a | b);
                assert_eq!(GateKind::Nor2.eval(&[a, b]), !(a | b));
                assert_eq!(GateKind::Xor2.eval(&[a, b]), a ^ b);
                assert_eq!(GateKind::Xnor2.eval(&[a, b]), !(a ^ b));
                assert_eq!(GateKind::Mux2.eval(&[f, a, b]), a);
                assert_eq!(GateKind::Mux2.eval(&[t, a, b]), b);
            }
        }
    }

    #[test]
    fn dff_pin_counts() {
        assert_eq!(GateKind::Dff(DffConfig::default()).num_inputs(), 1);
        assert_eq!(GateKind::Dff(DffConfig { has_enable: true, has_reset: false }).num_inputs(), 2);
        assert_eq!(GateKind::Dff(DffConfig { has_enable: true, has_reset: true }).num_inputs(), 3);
    }

    #[test]
    fn dff_next_state() {
        let plain = GateKind::Dff(DffConfig::default());
        assert!(plain.dff_next(false, &[true]));
        assert!(!plain.dff_next(true, &[false]));

        let en = GateKind::Dff(DffConfig { has_enable: true, has_reset: false });
        // Disabled: holds.
        assert!(en.dff_next(true, &[false, false]));
        assert!(!en.dff_next(false, &[true, false]));
        // Enabled: samples.
        assert!(en.dff_next(false, &[true, true]));

        let full = GateKind::Dff(DffConfig { has_enable: true, has_reset: true });
        // Reset dominates.
        assert!(!full.dff_next(true, &[true, true, true]));
        assert!(full.dff_next(false, &[true, true, false]));
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn wrong_arity_panics() {
        GateKind::And2.eval(&[true]);
    }

    #[test]
    fn class_index_is_dense_and_named() {
        let kinds = [
            GateKind::Inv,
            GateKind::Buf,
            GateKind::DelayBuf,
            GateKind::And2,
            GateKind::Nand2,
            GateKind::Or2,
            GateKind::Nor2,
            GateKind::Xor2,
            GateKind::Xnor2,
            GateKind::Mux2,
            GateKind::Dff(DffConfig::default()),
            GateKind::Dff(DffConfig { has_enable: true, has_reset: true }),
        ];
        let mut seen = [false; GateKind::NUM_CLASSES];
        for k in kinds {
            let i = k.class_index();
            assert!(i < GateKind::NUM_CLASSES);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "every class index reachable");
        assert_eq!(GateKind::CLASS_NAMES[GateKind::Nand2.class_index()], "nand2");
        assert_eq!(GateKind::CLASS_NAMES[GateKind::Dff(DffConfig::default()).class_index()], "dff");
    }

    #[test]
    fn nand2_is_the_area_unit() {
        assert_eq!(GateKind::Nand2.area_ge(), 1.0);
        assert!(GateKind::Xor2.area_ge() > GateKind::And2.area_ge());
        assert!(GateKind::Dff(DffConfig::default()).area_ge() > GateKind::Xor2.area_ge());
    }
}
