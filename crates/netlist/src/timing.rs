//! Static timing analysis over nominal cell delays.
//!
//! Reproduces the role of the Xilinx ISE timing report in the paper:
//! Table III's "Max Freq." column is read off [`TimingReport::max_freq_mhz`].

use crate::netlist::{Driver, Netlist};
use crate::topo::combinational_order;

/// Result of static timing analysis of a [`Netlist`].
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Latest arrival time (ps) at each net, relative to the clock edge.
    pub arrival_ps: Vec<u64>,
    /// Critical (longest) register-to-register / input-to-register /
    /// register-to-output combinational path delay in ps.
    pub critical_path_ps: u64,
    /// Net at the endpoint of the critical path.
    pub critical_endpoint: crate::NetId,
}

impl TimingReport {
    /// Maximum clock frequency implied by the critical path, in MHz.
    pub fn max_freq_mhz(&self) -> f64 {
        if self.critical_path_ps == 0 {
            return f64::INFINITY;
        }
        1.0e6 / self.critical_path_ps as f64
    }
}

/// Run STA with the library's nominal delays.
///
/// Timing start points are primary inputs, constants, and flip-flop outputs
/// (launched with the FF clk-to-Q delay); endpoints are flip-flop input pins
/// and primary outputs.
///
/// # Errors
///
/// Fails when the combinational subgraph is cyclic.
pub fn analyze(n: &Netlist) -> Result<TimingReport, crate::NetlistError> {
    let order = combinational_order(n)?;
    let mut arrival = vec![0u64; n.num_nets()];

    for (i, _) in n.nets.iter().enumerate() {
        arrival[i] = match n.driver(crate::NetId(i as u32)) {
            Driver::Gate(g) if n.gate(g).kind.is_sequential() => n.gate(g).kind.nominal_delay_ps(),
            _ => 0,
        };
    }

    for gid in order {
        let g = n.gate(gid);
        let worst_in = g.inputs.iter().map(|i| arrival[i.index()]).max().unwrap_or(0);
        arrival[g.output.index()] = worst_in + g.kind.nominal_delay_ps();
    }

    // Endpoints: FF input pins and primary outputs.
    let mut critical = 0u64;
    let mut endpoint = crate::NetId(0);
    for g in n.gates() {
        if g.kind.is_sequential() {
            for &pin in &g.inputs {
                if arrival[pin.index()] >= critical {
                    critical = arrival[pin.index()];
                    endpoint = pin;
                }
            }
        }
    }
    for (_, o) in n.outputs() {
        if arrival[o.index()] >= critical {
            critical = arrival[o.index()];
            endpoint = *o;
        }
    }

    Ok(TimingReport {
        arrival_ps: arrival,
        critical_path_ps: critical,
        critical_endpoint: endpoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::netlist::Netlist;

    #[test]
    fn single_gate_path() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let y = n.and2(a, b);
        n.output("y", y);
        let t = analyze(&n).unwrap();
        assert_eq!(t.critical_path_ps, GateKind::And2.nominal_delay_ps());
    }

    #[test]
    fn chains_accumulate() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let d = n.delay_chain(a, 10);
        let q = n.dff(d);
        n.output("q", q);
        let t = analyze(&n).unwrap();
        assert_eq!(t.critical_path_ps, 10 * GateKind::DelayBuf.nominal_delay_ps());
    }

    #[test]
    fn ff_launch_includes_clk_to_q() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let q = n.dff(a);
        let y = n.inv(q);
        let q2 = n.dff(y);
        n.output("q2", q2);
        let t = analyze(&n).unwrap();
        let expect =
            GateKind::Dff(Default::default()).nominal_delay_ps() + GateKind::Inv.nominal_delay_ps();
        assert_eq!(t.critical_path_ps, expect);
    }

    #[test]
    fn longest_of_parallel_paths_wins() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let slow = n.delay_chain(a, 5);
        let fast = n.inv(a);
        let y = n.xor2(slow, fast);
        n.output("y", y);
        let t = analyze(&n).unwrap();
        assert_eq!(
            t.critical_path_ps,
            5 * GateKind::DelayBuf.nominal_delay_ps() + GateKind::Xor2.nominal_delay_ps()
        );
    }
}
