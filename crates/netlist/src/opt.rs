//! Netlist optimisation: constant folding, common-subexpression
//! elimination, and dead-logic removal.
//!
//! **Why a masking workspace ships an optimiser**: the paper must
//! actively *prevent* synthesis optimisation ("compile with `-exact_map`",
//! "Keep Hierarchy on") because an optimiser that understands the logic
//! will destroy the countermeasures — most blatantly, every
//! [`GateKind::DelayBuf`] is a logical identity, so an unconstrained
//! pass deletes all DelayUnits and with them the secAND2-PD security.
//! This module makes that danger executable: run it on the PD core with
//! [`OptOptions::preserve_delay_elements`] off and watch the DelayUnits
//! vanish; the default keeps them opaque, like the paper's constraints.
//!
//! Cross-share CSE is a second, subtler hazard: merging structurally
//! identical gates from the two share domains creates shared nets whose
//! activity combines shares. The optimiser never *creates* new
//! share-combining logic (it only merges gates with *identical* inputs),
//! but the hazard is documented here because real synthesis is not so
//! polite.

use crate::gate::GateKind;
use crate::netlist::{Driver, Netlist};
use crate::topo::combinational_order;
use crate::NetId;
use std::collections::HashMap;

/// Optimiser configuration.
#[derive(Debug, Clone)]
pub struct OptOptions {
    /// Keep [`GateKind::DelayBuf`] cells as opaque buffers (the paper's
    /// `-exact_map` discipline). When `false`, delay chains are folded
    /// away like any other buffer — functionally sound, security-fatal.
    pub preserve_delay_elements: bool,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions { preserve_delay_elements: true }
    }
}

/// What the pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Gates in the input netlist.
    pub gates_before: usize,
    /// Gates in the optimised netlist.
    pub gates_after: usize,
    /// Gates folded to constants or aliases.
    pub folded: usize,
    /// Gates merged by CSE.
    pub cse_merged: usize,
    /// Gates removed as unreachable from outputs/registers.
    pub dead_removed: usize,
}

/// The value a source net maps to in the optimised design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Val {
    Const(bool),
    Net(NetId),
}

/// Optimise `n`, returning an equivalent netlist and statistics.
///
/// Sequential elements are preserved (every flip-flop is treated as
/// live); combinational logic is folded, de-duplicated, and swept.
///
/// # Panics
///
/// Panics when the input netlist does not validate.
pub fn optimize(n: &Netlist, opts: &OptOptions) -> (Netlist, OptStats) {
    n.validate().expect("optimize requires a valid netlist");
    let mut stats = OptStats { gates_before: n.num_gates(), ..Default::default() };

    // ---- liveness: backwards from outputs and every FF pin -------------
    let mut live_net = vec![false; n.num_nets()];
    let mut stack: Vec<NetId> = n.outputs().iter().map(|(_, o)| *o).collect();
    for g in n.gates() {
        if g.kind.is_sequential() {
            stack.extend(g.inputs.iter().copied());
            stack.push(g.output);
        }
    }
    while let Some(net) = stack.pop() {
        if std::mem::replace(&mut live_net[net.index()], true) {
            continue;
        }
        if let Driver::Gate(g) = n.driver(net) {
            stack.extend(n.gate(g).inputs.iter().copied());
        }
    }

    // ---- rebuild -------------------------------------------------------
    let mut out = Netlist::new(n.name());
    let mut map: Vec<Option<Val>> = vec![None; n.num_nets()];
    let mut const0 = None;
    let mut const1 = None;

    for &i in n.inputs() {
        let new = out.input(n.net_name(i).unwrap_or(&format!("in{}", i.0)).to_owned());
        map[i.index()] = Some(Val::Net(new));
    }
    for (i, slot) in map.iter_mut().enumerate() {
        if let Driver::Constant(v) = n.driver(NetId(i as u32)) {
            *slot = Some(Val::Const(v));
        }
    }

    let mut materialized_const = |out: &mut Netlist, v: bool| -> NetId {
        let slot = if v { &mut const1 } else { &mut const0 };
        *slot.get_or_insert_with(|| if v { out.const1() } else { out.const0() })
    };
    let resolve = |map: &Vec<Option<Val>>, net: NetId| -> Val {
        map[net.index()].expect("topological order guarantees definedness")
    };

    // FFs first (their outputs are sources for combinational logic); the
    // d-pins get patched after the combinational rebuild.
    let mut ff_patches: Vec<(crate::GateId, Vec<NetId>)> = Vec::new();
    for (gi, g) in n.gates().iter().enumerate() {
        if !g.kind.is_sequential() {
            continue;
        }
        let zero = materialized_const(&mut out, false);
        let new_out = out.add_gate(g.kind, &vec![zero; g.inputs.len()]);
        let Driver::Gate(new_gid) = out.driver(new_out) else { unreachable!() };
        map[g.output.index()] = Some(Val::Net(new_out));
        ff_patches.push((new_gid, g.inputs.clone()));
        let _ = gi;
    }

    // Combinational logic in topological order.
    let order = combinational_order(n).expect("validated");
    let mut cse: HashMap<(GateKind, Vec<Val>), NetId> = HashMap::new();
    for gid in order {
        let g = n.gate(gid);
        if !live_net[g.output.index()] {
            stats.dead_removed += 1;
            continue;
        }
        let ins: Vec<Val> = g.inputs.iter().map(|&i| resolve(&map, i)).collect();
        let folded = fold(g.kind, &ins, opts);
        let val = match folded {
            Some(v) => {
                stats.folded += 1;
                v
            }
            None => {
                // CSE key with commutative-input canonicalisation.
                let mut key_ins = ins.clone();
                if is_commutative(g.kind) {
                    key_ins.sort_by_key(val_key);
                }
                let key = (g.kind, key_ins);
                if let Some(&existing) = cse.get(&key) {
                    stats.cse_merged += 1;
                    Val::Net(existing)
                } else {
                    let pins: Vec<NetId> = ins
                        .iter()
                        .map(|v| match *v {
                            Val::Net(id) => id,
                            Val::Const(c) => materialized_const(&mut out, c),
                        })
                        .collect();
                    let new = out.add_gate(g.kind, &pins);
                    cse.insert(key, new);
                    Val::Net(new)
                }
            }
        };
        map[g.output.index()] = Some(val);
    }

    // Patch FF d-pins.
    for (new_gid, old_inputs) in ff_patches {
        for (pin, &old) in old_inputs.iter().enumerate() {
            let net = match resolve(&map, old) {
                Val::Net(id) => id,
                Val::Const(c) => materialized_const(&mut out, c),
            };
            out.set_gate_input(new_gid, pin, net);
        }
    }

    // Outputs.
    for (name, o) in n.outputs() {
        let net = match resolve(&map, *o) {
            Val::Net(id) => id,
            Val::Const(c) => materialized_const(&mut out, c),
        };
        out.output(name.clone(), net);
    }

    out.validate().expect("optimised netlist must validate");
    stats.gates_after = out.num_gates();
    (out, stats)
}

fn is_commutative(k: GateKind) -> bool {
    matches!(
        k,
        GateKind::And2
            | GateKind::Nand2
            | GateKind::Or2
            | GateKind::Nor2
            | GateKind::Xor2
            | GateKind::Xnor2
    )
}

fn val_key(v: &Val) -> (u8, u32) {
    match *v {
        Val::Const(c) => (0, u32::from(c)),
        Val::Net(id) => (1, id.0),
    }
}

/// Try to fold a gate to a constant or an alias of one of its inputs.
fn fold(kind: GateKind, ins: &[Val], opts: &OptOptions) -> Option<Val> {
    use GateKind::*;
    let c = |i: usize| match ins[i] {
        Val::Const(v) => Some(v),
        Val::Net(_) => None,
    };
    match kind {
        Buf => Some(ins[0]),
        DelayBuf => {
            if opts.preserve_delay_elements {
                // Opaque: fold only when driven by a constant (a delayed
                // constant carries no edges at all).
                match ins[0] {
                    Val::Const(v) => Some(Val::Const(v)),
                    Val::Net(_) => None,
                }
            } else {
                Some(ins[0]) // identity: the security-fatal fold
            }
        }
        Inv => c(0).map(|v| Val::Const(!v)),
        And2 | Nand2 | Or2 | Nor2 | Xor2 | Xnor2 => {
            let (a, b) = (c(0), c(1));
            match (kind, a, b) {
                (And2, Some(false), _) | (And2, _, Some(false)) => Some(Val::Const(false)),
                (And2, Some(true), _) => Some(ins[1]),
                (And2, _, Some(true)) => Some(ins[0]),
                (Nand2, Some(false), _) | (Nand2, _, Some(false)) => Some(Val::Const(true)),
                (Or2, Some(true), _) | (Or2, _, Some(true)) => Some(Val::Const(true)),
                (Or2, Some(false), _) => Some(ins[1]),
                (Or2, _, Some(false)) => Some(ins[0]),
                (Nor2, Some(true), _) | (Nor2, _, Some(true)) => Some(Val::Const(false)),
                (Xor2, Some(false), _) => Some(ins[1]),
                (Xor2, _, Some(false)) => Some(ins[0]),
                (Xor2, Some(true), Some(true)) => Some(Val::Const(false)),
                (Xnor2, Some(av), Some(bv)) => Some(Val::Const(!(av ^ bv))),
                _ => {
                    // Both inputs identical nets: algebraic identities.
                    if ins[0] == ins[1] {
                        match kind {
                            And2 | Or2 => Some(ins[0]),
                            Xor2 => Some(Val::Const(false)),
                            Xnor2 => Some(Val::Const(true)),
                            Nand2 | Nor2 => None, // INV of input: keep the gate
                            _ => None,
                        }
                    } else if let (Some(av), Some(bv)) = (a, b) {
                        Some(Val::Const(kind.eval(&[av, bv])))
                    } else {
                        None
                    }
                }
            }
        }
        Mux2 => match c(0) {
            Some(false) => Some(ins[1]),
            Some(true) => Some(ins[2]),
            None if ins[1] == ins[2] => Some(ins[1]),
            None => None,
        },
        Dff(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluator;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn equivalent_combinational(a: &Netlist, b: &Netlist, trials: u32) {
        assert_eq!(a.inputs().len(), b.inputs().len());
        let mut eva = Evaluator::new(a).unwrap();
        let mut evb = Evaluator::new(b).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..trials {
            let bits: Vec<bool> = (0..a.inputs().len()).map(|_| rng.random()).collect();
            let oa = eva.run_combinational(
                a,
                &a.inputs().iter().copied().zip(bits.iter().copied()).collect::<Vec<_>>(),
            );
            let ob = evb.run_combinational(
                b,
                &b.inputs().iter().copied().zip(bits.iter().copied()).collect::<Vec<_>>(),
            );
            assert_eq!(oa, ob);
        }
    }

    #[test]
    fn constant_folding_and_dce() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let zero = n.const0();
        let x = n.and2(a, zero); // folds to 0
        let y = n.xor2(x, a); // folds to a
        let dead = n.inv(a); // dead
        let _ = dead;
        n.output("y", y);
        let (o, stats) = optimize(&n, &OptOptions::default());
        assert_eq!(stats.folded, 2);
        assert_eq!(stats.dead_removed, 1);
        assert_eq!(o.num_gates(), 0, "everything folded away");
        equivalent_combinational(&n, &o, 8);
    }

    #[test]
    fn cse_merges_duplicates() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let x1 = n.and2(a, b);
        let x2 = n.and2(b, a); // commutative duplicate
        let y = n.xor2(x1, x2); // folds to 0 after CSE (same net twice)
        n.output("y", y);
        let (o, stats) = optimize(&n, &OptOptions::default());
        assert_eq!(stats.cse_merged, 1);
        assert!(o.num_gates() <= 1);
        equivalent_combinational(&n, &o, 8);
    }

    /// THE security-relevant behaviour: delay chains survive by default
    /// and are annihilated when unprotected — the paper's `-exact_map`
    /// discipline in executable form.
    #[test]
    fn delay_units_survive_only_when_preserved() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let d = n.delay_chain(a, 10);
        let b = n.input("b");
        let y = n.xor2(d, b);
        n.output("y", y);

        let (kept, _) = optimize(&n, &OptOptions { preserve_delay_elements: true });
        assert_eq!(kept.gates().iter().filter(|g| g.kind == GateKind::DelayBuf).count(), 10);
        let (gone, stats) = optimize(&n, &OptOptions { preserve_delay_elements: false });
        assert_eq!(
            gone.gates().iter().filter(|g| g.kind == GateKind::DelayBuf).count(),
            0,
            "an unconstrained optimiser deletes the countermeasure"
        );
        assert_eq!(stats.folded, 10);
        equivalent_combinational(&n, &gone, 8);
    }

    #[test]
    fn sequential_designs_survive() {
        let mut n = Netlist::new("t");
        let d = n.input("d");
        let en = n.input("en");
        let q = n.dff_en(d, en);
        let y = n.inv(q);
        n.output("y", y);
        let (o, _) = optimize(&n, &OptOptions::default());
        assert_eq!(o.gates().iter().filter(|g| g.kind.is_sequential()).count(), 1);
        // Clocked equivalence over a few cycles.
        let mut eva = Evaluator::new(&n).unwrap();
        let mut evb = Evaluator::new(&o).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..16 {
            let (dv, ev): (bool, bool) = (rng.random(), rng.random());
            for (ev_, net_d, net_en, nl) in [
                (&mut eva, n.inputs()[0], n.inputs()[1], &n),
                (&mut evb, o.inputs()[0], o.inputs()[1], &o),
            ] {
                ev_.set_input(net_d, dv);
                ev_.set_input(net_en, ev);
                ev_.clock(nl);
            }
            assert_eq!(eva.value(n.outputs()[0].1), evb.value(o.outputs()[0].1));
        }
    }

    #[test]
    fn mux_folding() {
        let mut n = Netlist::new("t");
        let s = n.input("s");
        let a = n.input("a");
        let zero = n.const0();
        let m1 = n.mux2(zero, a, s); // sel const 0 -> a
        let m2 = n.mux2(s, a, a); // both branches equal -> a
        let y = n.xor2(m1, m2); // a ^ a -> 0
        n.output("y", y);
        let (o, _) = optimize(&n, &OptOptions::default());
        assert_eq!(o.num_gates(), 0);
        equivalent_combinational(&n, &o, 8);
    }
}
