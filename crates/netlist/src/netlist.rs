//! The [`Netlist`] arena and its builder API.

use crate::error::NetlistError;
use crate::gate::{DffConfig, Gate, GateId, GateKind};

/// Identifier of a net (wire) inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl NetId {
    /// Index into the netlist's net arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// Nothing yet (an error if still the case at validation time).
    None,
    /// A primary input.
    PrimaryInput,
    /// The output of a gate.
    Gate(GateId),
    /// A constant value (tie-low / tie-high cell).
    Constant(bool),
}

#[derive(Debug, Clone)]
pub(crate) struct NetInfo {
    pub name: Option<String>,
    pub driver: Driver,
}

/// A flat, hierarchically-annotated gate-level netlist.
///
/// Gates and nets live in arenas addressed by [`GateId`] and [`NetId`].
/// Hierarchy is recorded as a module path string per gate (set via
/// [`Netlist::enter_module`] / [`Netlist::exit_module`]) which feeds the
/// per-module area report; the graph itself is flat, mirroring the
/// "Keep Hierarchy" synthesis constraint the paper uses only for
/// optimisation barriers.
///
/// # Examples
///
/// ```
/// use gm_netlist::Netlist;
///
/// let mut n = Netlist::new("half_adder");
/// let a = n.input("a");
/// let b = n.input("b");
/// let sum = n.xor2(a, b);
/// let carry = n.and2(a, b);
/// n.output("sum", sum);
/// n.output("carry", carry);
/// n.validate().unwrap();
/// assert_eq!(n.num_gates(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    pub(crate) nets: Vec<NetInfo>,
    pub(crate) gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<(String, NetId)>,
    module_paths: Vec<String>,
    scope: Vec<String>,
    current_module: u32,
}

impl Netlist {
    /// Create an empty netlist. The top module path is `""`.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nets: Vec::new(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            module_paths: vec![String::new()],
            scope: Vec::new(),
            current_module: 0,
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of gate instances.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs as `(name, net)` pairs in declaration order.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// All gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate with the given id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Driver of a net.
    pub fn driver(&self, net: NetId) -> Driver {
        self.nets[net.index()].driver
    }

    /// Name of a net, if it was given one.
    pub fn net_name(&self, net: NetId) -> Option<&str> {
        self.nets[net.index()].name.as_deref()
    }

    /// Module path of a gate (e.g. `"sbox0/mini2"`).
    pub fn module_of(&self, gate: GateId) -> &str {
        &self.module_paths[self.gates[gate.index()].module as usize]
    }

    /// All distinct module paths that appear in the design.
    pub fn module_paths(&self) -> &[String] {
        &self.module_paths
    }

    // ----- hierarchy -------------------------------------------------------

    /// Enter a child module scope; gates created until the matching
    /// [`Netlist::exit_module`] are attributed to it.
    pub fn enter_module(&mut self, name: impl AsRef<str>) {
        self.scope.push(name.as_ref().to_owned());
        let path = self.scope.join("/");
        self.current_module = match self.module_paths.iter().position(|p| *p == path) {
            Some(i) => i as u32,
            None => {
                self.module_paths.push(path);
                (self.module_paths.len() - 1) as u32
            }
        };
    }

    /// Leave the innermost module scope.
    ///
    /// # Panics
    ///
    /// Panics when called at top level.
    pub fn exit_module(&mut self) {
        self.scope.pop().expect("exit_module at top level");
        let path = self.scope.join("/");
        self.current_module =
            self.module_paths.iter().position(|p| *p == path).expect("parent scope must exist")
                as u32;
    }

    /// Run `f` inside a child module scope.
    pub fn in_module<T>(&mut self, name: impl AsRef<str>, f: impl FnOnce(&mut Self) -> T) -> T {
        self.enter_module(name);
        let out = f(self);
        self.exit_module();
        out
    }

    // ----- net/gate creation ----------------------------------------------

    fn fresh_net(&mut self, name: Option<String>) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(NetInfo { name, driver: Driver::None });
        id
    }

    /// Declare a named primary input and return its net.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.fresh_net(Some(name.into()));
        self.nets[id.index()].driver = Driver::PrimaryInput;
        self.inputs.push(id);
        id
    }

    /// Declare a named primary output driven by `net`.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// A constant-0 net (tie-low).
    pub fn const0(&mut self) -> NetId {
        let id = self.fresh_net(None);
        self.nets[id.index()].driver = Driver::Constant(false);
        id
    }

    /// A constant-1 net (tie-high).
    pub fn const1(&mut self) -> NetId {
        let id = self.fresh_net(None);
        self.nets[id.index()].driver = Driver::Constant(true);
        id
    }

    /// Instantiate a gate of `kind` over `inputs`, returning its output net.
    ///
    /// # Panics
    ///
    /// Panics on pin-count mismatch; structural problems that cannot be
    /// detected locally are reported by [`Netlist::validate`].
    pub fn add_gate(&mut self, kind: GateKind, inputs: &[NetId]) -> NetId {
        assert_eq!(
            inputs.len(),
            kind.num_inputs(),
            "{kind:?} expects {} pins, got {}",
            kind.num_inputs(),
            inputs.len()
        );
        let out = self.fresh_net(None);
        let gid = GateId(self.gates.len() as u32);
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output: out,
            module: self.current_module,
        });
        self.nets[out.index()].driver = Driver::Gate(gid);
        out
    }

    /// Inverter.
    pub fn inv(&mut self, a: NetId) -> NetId {
        self.add_gate(GateKind::Inv, &[a])
    }

    /// Buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.add_gate(GateKind::Buf, &[a])
    }

    /// A single delay element (one LUT-as-buffer / inverter-chain segment).
    pub fn delay_buf(&mut self, a: NetId) -> NetId {
        self.add_gate(GateKind::DelayBuf, &[a])
    }

    /// A chain of `n` delay elements — the paper's *DelayUnit* when
    /// `n == 10` on FPGA. Returns the delayed net.
    pub fn delay_chain(&mut self, mut a: NetId, n: usize) -> NetId {
        for _ in 0..n {
            a = self.delay_buf(a);
        }
        a
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::And2, &[a, b])
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::Nand2, &[a, b])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::Or2, &[a, b])
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::Nor2, &[a, b])
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::Xor2, &[a, b])
    }

    /// 2-input XNOR.
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::Xnor2, &[a, b])
    }

    /// 2:1 MUX returning `a` when `sel = 0`, `b` when `sel = 1`.
    pub fn mux2(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::Mux2, &[sel, a, b])
    }

    /// Plain D flip-flop.
    pub fn dff(&mut self, d: NetId) -> NetId {
        self.add_gate(GateKind::Dff(DffConfig::default()), &[d])
    }

    /// D flip-flop with clock enable.
    pub fn dff_en(&mut self, d: NetId, enable: NetId) -> NetId {
        self.add_gate(GateKind::Dff(DffConfig { has_enable: true, has_reset: false }), &[d, enable])
    }

    /// D flip-flop with clock enable and synchronous reset.
    pub fn dff_en_rst(&mut self, d: NetId, enable: NetId, reset: NetId) -> NetId {
        self.add_gate(
            GateKind::Dff(DffConfig { has_enable: true, has_reset: true }),
            &[d, enable, reset],
        )
    }

    /// Re-point input pin `pin` of `gate` to `net`.
    ///
    /// Needed for two-phase construction of register feedback loops
    /// (create the flip-flop on a placeholder input, build the logic that
    /// consumes its output, then patch the `d` pin). Structural
    /// soundness is re-checked by [`Netlist::validate`].
    ///
    /// # Panics
    ///
    /// Panics when `pin` is out of range for the gate.
    pub fn set_gate_input(&mut self, gate: GateId, pin: usize, net: NetId) {
        let g = &mut self.gates[gate.index()];
        assert!(pin < g.inputs.len(), "pin {pin} out of range");
        g.inputs[pin] = net;
    }

    /// Give `net` a (diagnostic) name. Later names win.
    pub fn name_net(&mut self, net: NetId, name: impl Into<String>) {
        self.nets[net.index()].name = Some(name.into());
    }

    /// XOR-reduce a non-empty slice of nets as a balanced tree
    /// (logarithmic depth, as a synthesis tool would build it).
    ///
    /// # Panics
    ///
    /// Panics when `nets` is empty.
    pub fn xor_reduce(&mut self, nets: &[NetId]) -> NetId {
        assert!(!nets.is_empty(), "xor_reduce of empty slice");
        let mut level = nets.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut chunks = level.chunks_exact(2);
            for pair in &mut chunks {
                next.push(self.xor2(pair[0], pair[1]));
            }
            next.extend(chunks.remainder());
            level = next;
        }
        level[0]
    }

    // ----- validation ------------------------------------------------------

    /// Check structural well-formedness: every used net has exactly one
    /// driver and the combinational subgraph is acyclic.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for g in &self.gates {
            for &i in &g.inputs {
                if matches!(self.nets[i.index()].driver, Driver::None) {
                    return Err(NetlistError::UndrivenNet { net: i });
                }
            }
        }
        for (_, o) in &self.outputs {
            if matches!(self.nets[o.index()].driver, Driver::None) {
                return Err(NetlistError::UndrivenNet { net: *o });
            }
        }
        crate::topo::combinational_order(self).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_basics() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let y = n.and2(a, b);
        n.output("y", y);
        assert_eq!(n.num_gates(), 1);
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.driver(y), Driver::Gate(GateId(0)));
        n.validate().unwrap();
    }

    #[test]
    fn module_scoping() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        n.enter_module("outer");
        let x = n.inv(a);
        n.enter_module("inner");
        let y = n.inv(x);
        n.exit_module();
        let z = n.inv(y);
        n.exit_module();
        n.output("z", z);
        assert_eq!(n.module_of(GateId(0)), "outer");
        assert_eq!(n.module_of(GateId(1)), "outer/inner");
        assert_eq!(n.module_of(GateId(2)), "outer");
    }

    #[test]
    fn undriven_net_detected() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let ghost = NetId(1); // never created through the API
        n.nets.push(NetInfo { name: None, driver: Driver::None });
        let y = n.and2(a, ghost);
        n.output("y", y);
        assert!(matches!(n.validate(), Err(NetlistError::UndrivenNet { .. })));
    }

    #[test]
    fn delay_chain_length() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let d = n.delay_chain(a, 10);
        n.output("d", d);
        assert_eq!(n.num_gates(), 10);
        n.validate().unwrap();
    }

    #[test]
    fn xor_reduce_folds_left() {
        let mut n = Netlist::new("t");
        let nets: Vec<_> = (0..4).map(|i| n.input(format!("i{i}"))).collect();
        let y = n.xor_reduce(&nets);
        n.output("y", y);
        assert_eq!(n.num_gates(), 3);
        n.validate().unwrap();
    }

    #[test]
    fn in_module_restores_scope() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        n.in_module("m", |n| {
            let _ = n.inv(a);
        });
        let g2 = n.inv(a);
        let out = n.buf(g2);
        n.output("o", out);
        assert_eq!(n.module_of(GateId(0)), "m");
        assert_eq!(n.module_of(GateId(1)), "");
    }
}
