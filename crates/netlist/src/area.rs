//! Area and resource reporting (Table III's utilisation columns).

use crate::gate::GateKind;
use crate::netlist::Netlist;
use std::collections::BTreeMap;

/// Utilisation summary of a [`Netlist`].
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    /// Total area in gate equivalents (NAND2 = 1.0), ASIC view.
    pub total_ge: f64,
    /// Area of delay elements only ([`GateKind::DelayBuf`]); the paper
    /// reports its secAND2-PD core both with and without DelayUnits.
    pub delay_ge: f64,
    /// Number of flip-flops (FPGA "FF" column).
    pub ff_count: usize,
    /// Estimated number of LUTs (FPGA "LUT" column); see [`lut_estimate`].
    pub lut_estimate: usize,
    /// Number of delay elements (each is literally one LUT on FPGA).
    pub delay_buf_count: usize,
    /// Gate count per cell kind (debug name -> count).
    pub by_kind: BTreeMap<String, usize>,
}

impl AreaReport {
    /// Total GE excluding delay elements ("remaining circuit" in §VI-B).
    pub fn logic_ge(&self) -> f64 {
        self.total_ge - self.delay_ge
    }
}

/// LUT-packing estimate for the FPGA view.
///
/// Spartan-6 LUT6s routinely absorb small trees of 2-input gates; mapping
/// experience on masked netlists with `KEEP HIERARCHY` (which blocks
/// cross-share packing, as the paper's flow does) gives roughly 1.6
/// 2-input gates per LUT. Delay buffers intentionally occupy one whole LUT
/// each — that is their entire purpose.
pub fn lut_estimate(comb_gates_excl_delay: usize, delay_bufs: usize) -> usize {
    (comb_gates_excl_delay as f64 / 1.6).ceil() as usize + delay_bufs
}

/// Compute the utilisation report for a netlist.
pub fn report(n: &Netlist) -> AreaReport {
    let mut total_ge = 0.0;
    let mut delay_ge = 0.0;
    let mut ff_count = 0;
    let mut delay_buf_count = 0;
    let mut comb_excl_delay = 0;
    let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();

    for g in n.gates() {
        let a = g.kind.area_ge();
        total_ge += a;
        match g.kind {
            GateKind::DelayBuf => {
                delay_ge += a;
                delay_buf_count += 1;
            }
            GateKind::Dff(_) => ff_count += 1,
            _ => comb_excl_delay += 1,
        }
        *by_kind.entry(kind_name(g.kind).to_owned()).or_default() += 1;
    }

    AreaReport {
        total_ge,
        delay_ge,
        ff_count,
        lut_estimate: lut_estimate(comb_excl_delay, delay_buf_count),
        delay_buf_count,
        by_kind,
    }
}

/// Per-module GE breakdown, keyed by hierarchical path.
pub fn by_module(n: &Netlist) -> BTreeMap<String, f64> {
    let mut map: BTreeMap<String, f64> = BTreeMap::new();
    for (gi, g) in n.gates().iter().enumerate() {
        let path = n.module_of(crate::GateId(gi as u32)).to_owned();
        *map.entry(path).or_default() += g.kind.area_ge();
    }
    map
}

fn kind_name(k: GateKind) -> &'static str {
    match k {
        GateKind::Inv => "INV",
        GateKind::Buf => "BUF",
        GateKind::DelayBuf => "DELAY",
        GateKind::And2 => "AND2",
        GateKind::Nand2 => "NAND2",
        GateKind::Or2 => "OR2",
        GateKind::Nor2 => "NOR2",
        GateKind::Xor2 => "XOR2",
        GateKind::Xnor2 => "XNOR2",
        GateKind::Mux2 => "MUX2",
        GateKind::Dff(_) => "DFF",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    #[test]
    fn counts_and_totals() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.and2(a, b);
        let y = n.xor2(x, a);
        let d = n.delay_chain(y, 3);
        let q = n.dff(d);
        n.output("q", q);
        let r = report(&n);
        assert_eq!(r.ff_count, 1);
        assert_eq!(r.delay_buf_count, 3);
        assert_eq!(r.by_kind["AND2"], 1);
        assert_eq!(r.by_kind["XOR2"], 1);
        assert_eq!(r.by_kind["DELAY"], 3);
        let expected = GateKind::And2.area_ge()
            + GateKind::Xor2.area_ge()
            + 3.0 * GateKind::DelayBuf.area_ge()
            + GateKind::Dff(Default::default()).area_ge();
        assert!((r.total_ge - expected).abs() < 1e-9);
        assert!((r.logic_ge() - (expected - 3.0 * GateKind::DelayBuf.area_ge())).abs() < 1e-9);
    }

    #[test]
    fn module_breakdown_sums_to_total() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        n.in_module("m1", |n| {
            let x = n.inv(a);
            n.in_module("m2", |n| {
                let y = n.xor2(x, a);
                n.output("y", y);
            });
        });
        let r = report(&n);
        let per: f64 = by_module(&n).values().sum();
        assert!((per - r.total_ge).abs() < 1e-9);
    }

    #[test]
    fn lut_estimate_counts_delay_bufs_fully() {
        assert_eq!(lut_estimate(0, 10), 10);
        assert_eq!(lut_estimate(16, 0), 10);
    }
}
