//! Structural error types for netlist construction and validation.

use crate::gate::GateId;
use crate::netlist::NetId;
use std::fmt;

/// Errors raised during netlist construction or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net is driven by more than one gate or primary input.
    MultipleDrivers {
        /// The doubly-driven net.
        net: NetId,
        /// The gate attempting to add a second driver.
        gate: GateId,
    },
    /// A net is used as a gate input or primary output but has no driver.
    UndrivenNet {
        /// The floating net.
        net: NetId,
    },
    /// The combinational subgraph contains a cycle.
    CombinationalLoop {
        /// A net on the cycle.
        net: NetId,
    },
    /// A gate was constructed with the wrong number of input pins.
    ArityMismatch {
        /// The offending gate.
        gate: GateId,
        /// Expected pin count.
        expected: usize,
        /// Provided pin count.
        found: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers { net, gate } => {
                write!(f, "net {net:?} already has a driver; gate {gate:?} adds a second one")
            }
            NetlistError::UndrivenNet { net } => write!(f, "net {net:?} has no driver"),
            NetlistError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net {net:?}")
            }
            NetlistError::ArityMismatch { gate, expected, found } => {
                write!(f, "gate {gate:?} expects {expected} inputs, found {found}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}
