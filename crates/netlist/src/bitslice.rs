//! 64-way bitsliced (transposed) netlist evaluation.
//!
//! Each net holds a `u64` whose bit `ℓ` is the net's value in *lane* `ℓ`
//! — 64 independent evaluations of the same circuit advance in lockstep,
//! one word operation per gate instead of one boolean per gate per trace.
//! This is the classic throughput fix for campaign-style workloads
//! (TVLA acquisition, exhaustive input sweeps) whose traces share no
//! state: the cycle-model sources pack 64 traces per block into the
//! lanes and evaluate every gate once per 64 traces.
//!
//! The word forms of the cell library are the obvious bitwise ones; the
//! only non-trivial cells are the multiplexer, computed branch-free as
//! `(a ^ b) & s ^ a`, and the flip-flop next-state select, the same
//! formula over the enable/reset words. Glitch-aware campaigns do not
//! evaluate through this plan: glitches are *timing* artefacts, erased
//! by zero-delay semantics. They run on `gm-sim`'s event engines — the
//! dynamic wheel, or its lane-parallel compiled schedule (`gm_sim::sched`)
//! which carries per-lane event times alongside the lane words.

use crate::eval::EvalPlan;
use crate::gate::{Gate, GateKind};
use crate::netlist::{Driver, Netlist};
use crate::GateId;
use gm_obs::Counter;

/// Number of lanes packed into one word.
pub const LANES: usize = 64;

/// In-place 64×64 bit-matrix transpose (Hacker's Delight §7-3, widened):
/// afterwards `a[i]` bit `j` holds the former `a[j]` bit `i`.
///
/// This is the bridge between *lane-major* data (one word per trace) and
/// *bit-major* data (one word per bit position, as the lanes hold it).
pub fn transpose64(a: &mut [u64; 64]) {
    // Contiguous runs of `j` row pairs per block: the inner loop indexes
    // disjoint slices with unit stride, which the autovectorizer turns
    // into 4-wide AVX2 code for j >= 4 — this routine is the campaign
    // engines' single hottest kernel, so its shape matters.
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut base = 0usize;
        while base < 64 {
            let (lo, hi) = a[base..base + 2 * j].split_at_mut(j);
            for (l, h) in lo.iter_mut().zip(hi.iter_mut()) {
                let t = (*h ^ (*l >> j)) & m;
                *h ^= t;
                *l ^= t << j;
            }
            base += 2 * j;
        }
        j >>= 1;
        if j != 0 {
            m ^= m << j;
        }
    }
}

/// Per-lane population counter over a stream of toggle words.
///
/// Hamming weights/distances of share words are the cycle model's power
/// terms; per lane they are `count_ones` over the *columns* of the pushed
/// words. The counter buffers up to 64 words, transposes the block once,
/// and adds one `count_ones` per lane — ~9 word ops per pushed word,
/// against 64 per-bit additions for the scalar path.
#[derive(Debug)]
pub struct LaneCounter {
    buf: [u64; 64],
    n: usize,
    acc: [u32; 64],
    words: Counter,
    transposes: Counter,
}

impl Default for LaneCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl LaneCounter {
    /// An empty counter.
    pub fn new() -> Self {
        LaneCounter {
            buf: [0; 64],
            n: 0,
            acc: [0; 64],
            words: Counter::new(),
            transposes: Counter::new(),
        }
    }

    /// Add one toggle word: lane `ℓ` gains `(w >> ℓ) & 1`.
    #[inline]
    pub fn push(&mut self, w: u64) {
        self.words.inc();
        self.buf[self.n] = w;
        self.n += 1;
        if self.n == 64 {
            self.flush();
        }
    }

    /// Lifetime count of pushed toggle words (0 under `obs-off`).
    pub fn obs_words(&self) -> u64 {
        self.words.get()
    }

    /// Lifetime count of 64×64 transposes performed (0 under `obs-off`).
    pub fn obs_transposes(&self) -> u64 {
        self.transposes.get()
    }

    fn flush(&mut self) {
        self.transposes.inc();
        self.buf[self.n..].fill(0);
        transpose64(&mut self.buf);
        for (a, b) in self.acc.iter_mut().zip(self.buf.iter()) {
            *a += b.count_ones();
        }
        self.n = 0;
    }

    /// Flush and return the per-lane counts, resetting the counter.
    pub fn drain(&mut self) -> [u32; 64] {
        if self.n > 0 {
            self.flush();
        }
        std::mem::replace(&mut self.acc, [0; 64])
    }
}

/// [`LaneCounter`] with *segment* boundaries: per-lane popcounts over a
/// stream of toggle words, partitioned into consecutive segments (one
/// per clock cycle in the cycle engines) without transposing at every
/// boundary.
///
/// A plain [`LaneCounter`] drained once per cycle pays a full 64×64
/// transpose per cycle even when the cycle pushed far fewer than 64
/// words — and the transpose *is* the engines' dominant cost. Here
/// [`Self::mark`] just records the boundary position; blocks are
/// transposed only when 64 words have actually accumulated (or once at
/// [`Self::finish`]), and each segment's share of a block is reduced
/// with one masked `count_ones` per lane. Cycles may span any number of
/// blocks and blocks any number of cycles.
#[derive(Debug)]
pub struct SegLaneCounter {
    buf: [u64; 64],
    n: usize,
    /// Segments closed inside the still-untransposed block:
    /// `(segment index, end position in buf)`, in push order.
    marks: Vec<(u32, u8)>,
    /// Index of the open segment.
    open: u32,
    /// Segment-major counts: `counts[seg * 64 + lane]`.
    counts: Vec<u32>,
    words: Counter,
    transposes: Counter,
    segments: Counter,
}

impl Default for SegLaneCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl SegLaneCounter {
    /// An empty counter with no closed segments.
    pub fn new() -> Self {
        SegLaneCounter {
            buf: [0; 64],
            n: 0,
            marks: Vec::new(),
            open: 0,
            counts: Vec::new(),
            words: Counter::new(),
            transposes: Counter::new(),
            segments: Counter::new(),
        }
    }

    /// Lifetime count of pushed toggle words (0 under `obs-off`).
    /// Survives [`Self::reset`]: campaign engines reset per trace group
    /// but report per campaign.
    pub fn obs_words(&self) -> u64 {
        self.words.get()
    }

    /// Lifetime count of 64×64 transposes performed (0 under `obs-off`).
    pub fn obs_transposes(&self) -> u64 {
        self.transposes.get()
    }

    /// Lifetime count of segment boundaries marked (0 under `obs-off`).
    pub fn obs_segments(&self) -> u64 {
        self.segments.get()
    }

    /// Forget all words, marks, and counts.
    pub fn reset(&mut self) {
        self.n = 0;
        self.marks.clear();
        self.open = 0;
        self.counts.clear();
    }

    /// Add one toggle word to the open segment: lane `ℓ` gains
    /// `(w >> ℓ) & 1`.
    #[inline]
    pub fn push(&mut self, w: u64) {
        self.words.inc();
        self.buf[self.n] = w;
        self.n += 1;
        if self.n == 64 {
            self.flush();
        }
    }

    /// Add two toggle words — the share-pair form the masked engines
    /// emit for every bit, with one capacity check instead of two.
    #[inline]
    pub fn push2(&mut self, a: u64, b: u64) {
        if self.n == 63 {
            self.push(a);
            self.push(b);
            return;
        }
        self.words.add(2);
        self.buf[self.n] = a;
        self.buf[self.n + 1] = b;
        self.n += 2;
        if self.n == 64 {
            self.flush();
        }
    }

    /// Append every word yielded by `words` to the open segment — the
    /// batched form of [`Self::push`], bit-identical in effect.
    ///
    /// The bitsliced cycle engines push hundreds of words per clock
    /// cycle; routed through `push`/`push2` each word pays its own
    /// capacity check, buffer-index update, and observability bump.
    /// Batching hoists that bookkeeping out of the loop (the index and
    /// word count live in registers for the whole run), which roughly
    /// halves the engines' counting overhead on top of the transpose.
    #[inline]
    pub fn extend<I: IntoIterator<Item = u64>>(&mut self, words: I) {
        let mut n = self.n;
        let mut count = 0u64;
        for w in words {
            self.buf[n] = w;
            n += 1;
            count += 1;
            if n == 64 {
                self.n = 64;
                self.flush();
                n = 0;
            }
        }
        self.n = n;
        self.words.add(count);
    }

    /// Close the open segment at the current position and open the next.
    #[inline]
    pub fn mark(&mut self) {
        self.segments.inc();
        self.marks.push((self.open, self.n as u8));
        self.open += 1;
    }

    /// Number of closed segments.
    pub fn num_segments(&self) -> usize {
        self.open as usize
    }

    /// Flush any buffered words and return the per-lane counts of every
    /// *closed* segment, segment-major (`counts[seg * 64 + lane]`).
    /// Words pushed after the last [`Self::mark`] keep accumulating in
    /// the open segment and are not part of the returned view.
    pub fn finish(&mut self) -> &[u32] {
        if self.n > 0 || !self.marks.is_empty() {
            self.flush();
        }
        let len = self.open as usize * 64;
        if self.counts.len() < len {
            self.counts.resize(len, 0);
        }
        &self.counts[..len]
    }

    fn flush(&mut self) {
        if self.n == 0 {
            // Boundary-only block (a counter nothing pushed to this
            // group): the zero counts materialise in `finish`.
            self.marks.clear();
            return;
        }
        self.transposes.inc();
        self.buf[self.n..].fill(0);
        transpose64(&mut self.buf);
        let need = (self.open as usize + 1) * 64;
        if self.counts.len() < need {
            self.counts.resize(need, 0);
        }
        let mut start = 0usize;
        for &(seg, end) in &self.marks {
            Self::accumulate(
                &mut self.counts[seg as usize * 64..][..64],
                &self.buf,
                start,
                end as usize,
            );
            start = end as usize;
        }
        Self::accumulate(
            &mut self.counts[self.open as usize * 64..][..64],
            &self.buf,
            start,
            self.n,
        );
        self.marks.clear();
        self.n = 0;
    }

    /// Add the popcount of column bits `[start, end)` to each lane's
    /// count (`cols` is the transposed block: `cols[lane]` bit `i` =
    /// pushed word `i`'s lane-`ℓ` bit).
    fn accumulate(acc: &mut [u32], cols: &[u64; 64], start: usize, end: usize) {
        if end == start {
            return;
        }
        if end - start == 64 {
            // Whole-block segment (a cycle spanning 64+ words): no mask.
            for (a, c) in acc.iter_mut().zip(cols.iter()) {
                *a += c.count_ones();
            }
            return;
        }
        let mask = (!0u64 >> (64 - (end - start))) << start;
        for (a, c) in acc.iter_mut().zip(cols.iter()) {
            *a += (c & mask).count_ones();
        }
    }
}

/// Word form of a combinational cell over lane words.
#[inline]
fn eval_word(kind: GateKind, pins: &[u64]) -> u64 {
    match kind {
        GateKind::Inv => !pins[0],
        GateKind::Buf | GateKind::DelayBuf => pins[0],
        GateKind::And2 => pins[0] & pins[1],
        GateKind::Nand2 => !(pins[0] & pins[1]),
        GateKind::Or2 => pins[0] | pins[1],
        GateKind::Nor2 => !(pins[0] | pins[1]),
        GateKind::Xor2 => pins[0] ^ pins[1],
        GateKind::Xnor2 => !(pins[0] ^ pins[1]),
        // pins = [sel, a, b], a when sel = 0 — branch-free select.
        GateKind::Mux2 => (pins[1] ^ pins[2]) & pins[0] ^ pins[1],
        // Registers hold under combinational evaluation (cf. the scalar
        // evaluator, which seeds FF-driven nets before the topo walk).
        GateKind::Dff(_) => 0,
    }
}

/// Word form of the flip-flop next-state function, pin order
/// `[d, enable?, reset?]`: reset dominates, disabled lanes hold.
#[inline]
fn dff_next_word(kind: GateKind, current: u64, pins: &[u64]) -> u64 {
    let GateKind::Dff(cfg) = kind else {
        panic!("dff_next_word called on combinational cell {kind:?}")
    };
    let d = pins[0];
    let mut idx = 1;
    let mut next = if cfg.has_enable {
        let en = pins[idx];
        idx += 1;
        (d ^ current) & en ^ current
    } else {
        d
    };
    if cfg.has_reset {
        next &= !pins[idx];
    }
    next
}

/// The 64-lane counterpart of [`crate::Evaluator`]: same schedule
/// ([`EvalPlan`]), same register semantics, `u64` lane words for values.
///
/// # Examples
///
/// ```
/// use gm_netlist::{Netlist, bitslice::BitEvaluator};
///
/// let mut n = Netlist::new("toggler");
/// let a = n.input("a");
/// let q = n.dff(a);
/// let y = n.inv(q);
/// n.output("y", y);
///
/// let mut ev = BitEvaluator::new(&n).unwrap();
/// ev.set_input(a, 0b10); // lane 1 drives 1, lane 0 drives 0
/// ev.clock(&n);
/// ev.settle(&n);
/// assert_eq!(ev.value(y) & 0b11, 0b01); // lane 1 sampled 1 -> y = 0
/// ```
#[derive(Debug, Clone)]
pub struct BitEvaluator {
    values: Vec<u64>,
    ff_state: Vec<u64>,
    plan: EvalPlan,
    pin_scratch: Vec<u64>,
    ff_next: Vec<u64>,
}

impl BitEvaluator {
    /// Build an evaluator; fails when the netlist has a combinational loop.
    pub fn new(n: &Netlist) -> Result<Self, crate::NetlistError> {
        let plan = EvalPlan::new(n)?;
        let num_ffs = plan.ff_gates.len();
        Ok(BitEvaluator {
            values: vec![0; n.num_nets()],
            ff_state: vec![0; n.num_gates()],
            plan,
            pin_scratch: Vec::with_capacity(4),
            ff_next: Vec::with_capacity(num_ffs),
        })
    }

    /// Current lane word of a net (valid after [`BitEvaluator::settle`]).
    pub fn value(&self, net: crate::NetId) -> u64 {
        self.values[net.index()]
    }

    /// Current value of a net in one lane.
    pub fn value_lane(&self, net: crate::NetId, lane: usize) -> bool {
        assert!(lane < LANES, "lane index {lane} out of range");
        (self.values[net.index()] >> lane) & 1 == 1
    }

    /// Drive a primary input with a full lane word.
    pub fn set_input(&mut self, net: crate::NetId, word: u64) {
        self.values[net.index()] = word;
    }

    /// Force a flip-flop's per-lane state.
    pub fn set_ff_state(&mut self, gate: GateId, word: u64) {
        self.ff_state[gate.index()] = word;
    }

    /// Current per-lane state of a flip-flop.
    pub fn ff_state(&self, gate: GateId) -> u64 {
        self.ff_state[gate.index()]
    }

    /// Reset all flip-flops to 0 in every lane.
    pub fn reset(&mut self) {
        self.ff_state.iter_mut().for_each(|s| *s = 0);
    }

    /// Propagate all combinational logic to a fixed point (zero delay),
    /// all 64 lanes at once.
    pub fn settle(&mut self, n: &Netlist) {
        for (i, info) in n.nets.iter().enumerate() {
            match info.driver {
                Driver::Constant(v) => self.values[i] = if v { u64::MAX } else { 0 },
                Driver::Gate(g) if n.gate(g).kind.is_sequential() => {
                    self.values[i] = self.ff_state[g.index()];
                }
                _ => {}
            }
        }
        let (values, pins) = (&mut self.values, &mut self.pin_scratch);
        for &gid in &self.plan.order {
            let g = n.gate(gid);
            pins.clear();
            pins.extend(g.inputs.iter().map(|i| values[i.index()]));
            values[g.output.index()] = eval_word(g.kind, pins);
        }
    }

    /// Apply one rising clock edge in every lane: flip-flops sample their
    /// pins (as settled before the edge), then logic re-settles.
    pub fn clock(&mut self, n: &Netlist) {
        self.settle(n);
        let mut next = std::mem::take(&mut self.ff_next);
        next.clear();
        {
            let (values, ff_state, pins) = (&self.values, &self.ff_state, &mut self.pin_scratch);
            for &gid in &self.plan.ff_gates {
                let g = n.gate(gid);
                pins.clear();
                pins.extend(g.inputs.iter().map(|i| values[i.index()]));
                next.push(dff_next_word(g.kind, ff_state[gid.index()], pins));
            }
        }
        for (&gid, &v) in self.plan.ff_gates.iter().zip(next.iter()) {
            self.ff_state[gid.index()] = v;
        }
        self.ff_next = next;
        self.settle(n);
    }

    /// Per-gate accessor used by word-domain cycle harnesses: the list of
    /// sequential gates in schedule order.
    pub fn ff_gates(&self) -> &[GateId] {
        &self.plan.ff_gates
    }
}

/// Sanity helper for tests and harnesses: evaluate `gate`'s word function
/// directly (combinational cells only).
pub fn gate_word(gate: &Gate, pins: &[u64]) -> u64 {
    eval_word(gate.kind, pins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluator;

    #[test]
    fn transpose_matches_naive() {
        // A full-period LCG fills an asymmetric matrix.
        let mut a = [0u64; 64];
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for w in &mut a {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *w = x;
        }
        let orig = a;
        transpose64(&mut a);
        for (i, row) in a.iter().enumerate() {
            for (j, col) in orig.iter().enumerate() {
                assert_eq!((row >> j) & 1, (col >> i) & 1, "({i},{j})");
            }
        }
        // Involution.
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn lane_counter_counts_columns() {
        let mut c = LaneCounter::new();
        // 100 words: lane 0 sees all ones, lane 1 every other word,
        // lane 63 the first word only.
        for i in 0..100u64 {
            let mut w = 1u64;
            if i % 2 == 0 {
                w |= 2;
            }
            if i == 0 {
                w |= 1 << 63;
            }
            c.push(w);
        }
        let counts = c.drain();
        assert_eq!(counts[0], 100);
        assert_eq!(counts[1], 50);
        assert_eq!(counts[63], 1);
        assert_eq!(counts[17], 0);
        // Drained counter starts over.
        c.push(u64::MAX);
        assert_eq!(c.drain(), [1u32; 64]);
    }

    #[test]
    fn seg_counter_segments_independent() {
        let mut c = SegLaneCounter::new();
        // Segment 0: three words, lane 0 always set, lane 5 once.
        c.push(1);
        c.push2(1 | (1 << 5), 1);
        c.mark();
        // Segment 1: two words, lane 0 clear, lane 63 both times.
        c.push2(1 << 63, 1 << 63);
        c.mark();
        // Segment 2: empty (a cycle in which a counter saw no words).
        c.mark();
        assert_eq!(c.num_segments(), 3);
        let counts = c.finish();
        assert_eq!(counts.len(), 3 * LANES);
        assert_eq!(counts[0], 3); // seg 0, lane 0
        assert_eq!(counts[5], 1); // seg 0, lane 5
        assert_eq!(counts[LANES + 63], 2); // seg 1, lane 63
        assert_eq!(counts[LANES], 0); // seg 1, lane 0
        assert!(counts[2 * LANES..].iter().all(|&c| c == 0), "empty segment");
    }

    /// Segments that straddle the internal 64-word transpose block get
    /// their pieces stitched back together.
    #[test]
    fn seg_counter_straddles_blocks() {
        let mut c = SegLaneCounter::new();
        // Segment 0: 100 words (crosses the 64-word flush boundary),
        // lane 3 set in every word, lane 9 in the last word only.
        for i in 0..100u64 {
            let mut w = 1u64 << 3;
            if i == 99 {
                w |= 1 << 9;
            }
            c.push(w);
        }
        c.mark();
        // Segment 1: 30 more words in the already-open block.
        for _ in 0..30 {
            c.push(1 << 3);
        }
        c.mark();
        let counts = c.finish();
        assert_eq!(counts[3], 100);
        assert_eq!(counts[9], 1);
        assert_eq!(counts[LANES + 3], 30);
        // Reset starts a fresh set of segments.
        c.reset();
        c.push(u64::MAX);
        c.mark();
        assert_eq!(c.num_segments(), 1);
        let counts = c.finish();
        assert!(counts[..LANES].iter().all(|&x| x == 1));
    }

    /// `extend` is bit-identical to the same words pushed one at a time,
    /// including streams that straddle several flush boundaries and
    /// segments that interleave batched and single pushes.
    #[test]
    fn extend_matches_single_pushes() {
        let mut batched = SegLaneCounter::new();
        let mut single = SegLaneCounter::new();
        let mut x = 0xc0ff_ee00_d15e_a5e5u64;
        let mut step = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(97);
            x
        };
        for run in [3usize, 64, 65, 1, 130, 0, 63, 200] {
            let words: Vec<u64> = (0..run).map(|_| step()).collect();
            batched.extend(words.iter().copied());
            for &w in &words {
                single.push(w);
            }
            let extra = step();
            batched.push(extra);
            single.push(extra);
            batched.mark();
            single.mark();
        }
        assert_eq!(batched.num_segments(), single.num_segments());
        assert_eq!(batched.finish(), single.finish());
    }

    /// SegLaneCounter totals agree with the simple LaneCounter when the
    /// whole stream is one segment.
    #[test]
    fn seg_counter_matches_lane_counter() {
        let mut seg = SegLaneCounter::new();
        let mut plain = LaneCounter::new();
        let mut x = 0x9e37_79b9u64;
        for _ in 0..777 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            seg.push(x);
            plain.push(x);
        }
        seg.mark();
        let want = plain.drain();
        assert_eq!(seg.finish(), &want[..]);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn obs_counters_track_words_and_transposes() {
        let mut c = LaneCounter::new();
        for _ in 0..130 {
            c.push(1);
        }
        let _ = c.drain();
        assert_eq!(c.obs_words(), 130);
        // Two full-block flushes plus the partial flush in drain.
        assert_eq!(c.obs_transposes(), 3);

        let mut s = SegLaneCounter::new();
        for _ in 0..63 {
            s.push(0);
        }
        s.push2(1, 2); // straddles the 64-word boundary
        s.mark();
        let _ = s.finish();
        assert_eq!(s.obs_words(), 65);
        assert_eq!(s.obs_segments(), 1);
        assert_eq!(s.obs_transposes(), 2);
    }

    #[test]
    fn mux_word_form_matches_truth_table() {
        for s in [0u64, 1] {
            for a in [0u64, 1] {
                for b in [0u64, 1] {
                    let want = u64::from(if s == 1 { b == 1 } else { a == 1 });
                    assert_eq!(eval_word(GateKind::Mux2, &[s, a, b]) & 1, want);
                }
            }
        }
    }

    /// Lanes evolve exactly like 64 independent scalar evaluators over a
    /// clocked design with enable/reset registers.
    #[test]
    fn lanes_match_scalar_evaluator() {
        let mut n = Netlist::new("t");
        let d = n.input("d");
        let en = n.input("en");
        let rst = n.input("rst");
        let q = n.dff_en_rst(d, en, rst);
        let q2 = n.dff(q);
        let y = n.xor2(q, q2);
        let m = n.mux2(q, d, y);
        n.output("y", y);
        n.output("m", m);

        let mut bev = BitEvaluator::new(&n).unwrap();
        let mut sev: Vec<Evaluator> = (0..64).map(|_| Evaluator::new(&n).unwrap()).collect();
        let mut x = 0xdead_beefu64;
        for _step in 0..32 {
            let mut words = [0u64; 3];
            for (i, w) in words.iter_mut().enumerate() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(i as u64 | 1);
                *w = x;
            }
            bev.set_input(d, words[0]);
            bev.set_input(en, words[1]);
            bev.set_input(rst, words[2]);
            bev.clock(&n);
            for (lane, ev) in sev.iter_mut().enumerate() {
                ev.set_input(d, (words[0] >> lane) & 1 == 1);
                ev.set_input(en, (words[1] >> lane) & 1 == 1);
                ev.set_input(rst, (words[2] >> lane) & 1 == 1);
                ev.clock(&n);
                for net in [y, m, q, q2] {
                    assert_eq!(bev.value_lane(net, lane), ev.value(net), "lane {lane} net {net:?}");
                }
            }
        }
    }
}
