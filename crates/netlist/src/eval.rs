//! Zero-delay functional evaluation of a netlist, including clocked
//! register semantics. Used for correctness testing; the glitch-aware
//! timing behaviour lives in `gm-sim`.

use crate::gate::GateId;
use crate::netlist::{Driver, Netlist};
use crate::topo::combinational_order;

/// Precomputed evaluation schedule shared by the scalar [`Evaluator`] and
/// the 64-lane [`crate::bitslice::BitEvaluator`]: the combinational topo
/// order plus the list of sequential gates.
#[derive(Debug, Clone)]
pub(crate) struct EvalPlan {
    pub order: Vec<GateId>,
    pub ff_gates: Vec<GateId>,
}

impl EvalPlan {
    /// Build the schedule; fails when the netlist has a combinational loop.
    pub fn new(n: &Netlist) -> Result<Self, crate::NetlistError> {
        let order = combinational_order(n)?;
        let ff_gates: Vec<GateId> = n
            .gates()
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind.is_sequential())
            .map(|(i, _)| GateId(i as u32))
            .collect();
        Ok(EvalPlan { order, ff_gates })
    }
}

/// A zero-delay evaluator holding register state for a [`Netlist`].
///
/// # Examples
///
/// ```
/// use gm_netlist::{Netlist, Evaluator};
///
/// let mut n = Netlist::new("toggler");
/// let a = n.input("a");
/// let q = n.dff(a);
/// let y = n.inv(q);
/// n.output("y", y);
///
/// let mut ev = Evaluator::new(&n).unwrap();
/// ev.set_input(a, true);
/// ev.settle(&n);
/// assert!(ev.value(y)); // q still 0
/// ev.clock(&n);
/// assert!(!ev.value(y)); // q sampled 1
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator {
    values: Vec<bool>,
    ff_state: Vec<bool>,
    plan: EvalPlan,
    // Scratch buffers reused across `settle`/`clock` calls so that the
    // campaign hot path (millions of clock edges) stays allocation-free.
    pin_scratch: Vec<bool>,
    ff_next: Vec<bool>,
}

impl Evaluator {
    /// Build an evaluator; fails when the netlist has a combinational loop.
    pub fn new(n: &Netlist) -> Result<Self, crate::NetlistError> {
        let plan = EvalPlan::new(n)?;
        let num_ffs = plan.ff_gates.len();
        Ok(Evaluator {
            values: vec![false; n.num_nets()],
            ff_state: vec![false; n.num_gates()],
            plan,
            pin_scratch: Vec::with_capacity(4),
            ff_next: Vec::with_capacity(num_ffs),
        })
    }

    /// Current value of a net (valid after [`Evaluator::settle`]).
    pub fn value(&self, net: crate::NetId) -> bool {
        self.values[net.index()]
    }

    /// Drive a primary input.
    pub fn set_input(&mut self, net: crate::NetId, value: bool) {
        self.values[net.index()] = value;
    }

    /// Force a flip-flop's state (e.g. for reset or directed tests).
    pub fn set_ff_state(&mut self, gate: GateId, value: bool) {
        self.ff_state[gate.index()] = value;
    }

    /// Current state of a flip-flop.
    pub fn ff_state(&self, gate: GateId) -> bool {
        self.ff_state[gate.index()]
    }

    /// Reset all flip-flops to 0.
    pub fn reset(&mut self) {
        self.ff_state.iter_mut().for_each(|s| *s = false);
    }

    /// Propagate all combinational logic to a fixed point (zero delay).
    pub fn settle(&mut self, n: &Netlist) {
        // Constants and FF outputs first.
        for (i, info) in n.nets.iter().enumerate() {
            match info.driver {
                Driver::Constant(v) => self.values[i] = v,
                Driver::Gate(g) if n.gate(g).kind.is_sequential() => {
                    self.values[i] = self.ff_state[g.index()];
                }
                _ => {}
            }
        }
        let (values, pins) = (&mut self.values, &mut self.pin_scratch);
        for &gid in &self.plan.order {
            let g = n.gate(gid);
            pins.clear();
            pins.extend(g.inputs.iter().map(|i| values[i.index()]));
            values[g.output.index()] = g.kind.eval(pins);
        }
    }

    /// Apply one rising clock edge: every flip-flop samples its pins
    /// (as settled before the edge), then logic re-settles.
    pub fn clock(&mut self, n: &Netlist) {
        self.settle(n);
        let mut next = std::mem::take(&mut self.ff_next);
        next.clear();
        {
            let (values, ff_state, pins) = (&self.values, &self.ff_state, &mut self.pin_scratch);
            for &gid in &self.plan.ff_gates {
                let g = n.gate(gid);
                pins.clear();
                pins.extend(g.inputs.iter().map(|i| values[i.index()]));
                next.push(g.kind.dff_next(ff_state[gid.index()], pins));
            }
        }
        for (&gid, &v) in self.plan.ff_gates.iter().zip(next.iter()) {
            self.ff_state[gid.index()] = v;
        }
        self.ff_next = next;
        self.settle(n);
    }

    /// Convenience: set named inputs, settle, and read named outputs.
    pub fn run_combinational(&mut self, n: &Netlist, inputs: &[(crate::NetId, bool)]) -> Vec<bool> {
        for &(net, v) in inputs {
            self.set_input(net, v);
        }
        self.settle(n);
        n.outputs().iter().map(|(_, o)| self.value(*o)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    #[test]
    fn full_adder_truth_table() {
        let mut n = Netlist::new("fa");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let ab = n.xor2(a, b);
        let s = n.xor2(ab, c);
        let g1 = n.and2(a, b);
        let g2 = n.and2(ab, c);
        let cout = n.or2(g1, g2);
        n.output("s", s);
        n.output("cout", cout);

        let mut ev = Evaluator::new(&n).unwrap();
        for bits in 0..8u8 {
            let (av, bv, cv) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            let outs = ev.run_combinational(&n, &[(a, av), (b, bv), (c, cv)]);
            let total = u8::from(av) + u8::from(bv) + u8::from(cv);
            assert_eq!(outs[0], total & 1 != 0, "sum for {bits:03b}");
            assert_eq!(outs[1], total >= 2, "carry for {bits:03b}");
        }
    }

    #[test]
    fn enabled_ff_holds_when_disabled() {
        let mut n = Netlist::new("t");
        let d = n.input("d");
        let en = n.input("en");
        let q = n.dff_en(d, en);
        n.output("q", q);
        let mut ev = Evaluator::new(&n).unwrap();
        ev.set_input(d, true);
        ev.set_input(en, false);
        ev.clock(&n);
        assert!(!ev.value(q), "disabled FF must hold 0");
        ev.set_input(en, true);
        ev.clock(&n);
        assert!(ev.value(q), "enabled FF samples 1");
        ev.set_input(d, false);
        ev.set_input(en, false);
        ev.clock(&n);
        assert!(ev.value(q), "disabled FF holds 1");
    }

    #[test]
    fn reset_dominates_enable() {
        let mut n = Netlist::new("t");
        let d = n.input("d");
        let en = n.input("en");
        let rst = n.input("rst");
        let q = n.dff_en_rst(d, en, rst);
        n.output("q", q);
        let mut ev = Evaluator::new(&n).unwrap();
        ev.set_input(d, true);
        ev.set_input(en, true);
        ev.set_input(rst, false);
        ev.clock(&n);
        assert!(ev.value(q));
        ev.set_input(rst, true);
        ev.clock(&n);
        assert!(!ev.value(q));
    }

    #[test]
    fn constants_settle() {
        let mut n = Netlist::new("t");
        let one = n.const1();
        let zero = n.const0();
        let y = n.xor2(one, zero);
        n.output("y", y);
        let mut ev = Evaluator::new(&n).unwrap();
        ev.settle(&n);
        assert!(ev.value(y));
    }
}
