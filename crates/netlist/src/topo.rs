//! Topological ordering of the combinational subgraph.

use crate::csr::Csr;
use crate::error::NetlistError;
use crate::gate::GateId;
use crate::netlist::{Driver, Netlist};

/// Topologically order all *combinational* gates such that every gate
/// appears after the drivers of its inputs. Flip-flop outputs and primary
/// inputs are treated as sources, flip-flop `d`/`enable`/`reset` pins as
/// sinks — exactly the cut used by synchronous-circuit timing analysis.
///
/// Returns [`NetlistError::CombinationalLoop`] when the combinational
/// subgraph is cyclic.
pub fn combinational_order(n: &Netlist) -> Result<Vec<GateId>, NetlistError> {
    let num = n.num_gates();
    // In-degree counts only combinational fan-in.
    let mut indeg = vec![0u32; num];
    // net -> combinational gates that consume it, as flat CSR rows.
    let mut edges: Vec<(u32, u32)> = Vec::new();

    for (gi, g) in n.gates().iter().enumerate() {
        if g.kind.is_sequential() {
            continue;
        }
        for &i in &g.inputs {
            if let Driver::Gate(src) = n.driver(i) {
                if !n.gate(src).kind.is_sequential() {
                    indeg[gi] += 1;
                    edges.push((i.0, gi as u32));
                }
            }
        }
    }
    let consumers = Csr::from_pairs(n.num_nets(), &edges);

    let mut ready: Vec<u32> = (0..num as u32)
        .filter(|&gi| !n.gates()[gi as usize].kind.is_sequential() && indeg[gi as usize] == 0)
        .collect();
    let mut order = Vec::with_capacity(num);

    while let Some(gi) = ready.pop() {
        order.push(GateId(gi));
        let out = n.gates()[gi as usize].output;
        for &c in consumers.row(out.index()) {
            indeg[c as usize] -= 1;
            if indeg[c as usize] == 0 {
                ready.push(c);
            }
        }
    }

    let comb_total = n.gates().iter().filter(|g| !g.kind.is_sequential()).count();
    if order.len() != comb_total {
        // Some combinational gate never reached in-degree 0: it is on a loop.
        let stuck = (0..num)
            .find(|&gi| !n.gates()[gi].kind.is_sequential() && indeg[gi] > 0)
            .expect("a stuck gate must exist when counts mismatch");
        return Err(NetlistError::CombinationalLoop { net: n.gates()[stuck].output });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    #[test]
    fn orders_respect_dependencies() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.and2(a, b); // gate 0
        let y = n.xor2(x, a); // gate 1 depends on 0
        let z = n.or2(y, x); // gate 2 depends on 0, 1
        n.output("z", z);
        let order = combinational_order(&n).unwrap();
        let pos: Vec<usize> =
            (0..3).map(|g| order.iter().position(|o| o.0 == g).unwrap()).collect();
        assert!(pos[0] < pos[1]);
        assert!(pos[1] < pos[2]);
    }

    #[test]
    fn ff_breaks_cycles() {
        // y = inv(q); q = dff(y): sequential loop is fine.
        let mut n = Netlist::new("t");
        let a = n.input("seed");
        let x = n.xor2(a, a); // placeholder to have a comb gate
        let q_feedback = n.dff(x);
        let y = n.inv(q_feedback);
        n.output("y", y);
        assert!(combinational_order(&n).is_ok());
    }

    #[test]
    fn combinational_loop_detected() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let x = n.and2(a, a); // gate 0
                              // Manually patch gate 0 to consume its own output -> loop.
        n.gates[0].inputs[1] = x;
        n.output("x", x);
        assert!(matches!(combinational_order(&n), Err(NetlistError::CombinationalLoop { .. })));
    }
}
