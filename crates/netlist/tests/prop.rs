//! Property-based tests for the netlist IR: random circuit construction
//! never breaks structural invariants, and evaluation semantics are
//! consistent across the builder helpers.

use gm_netlist::bitslice::BitEvaluator;
use gm_netlist::{Evaluator, GateKind, NetId, Netlist};
use proptest::prelude::*;

/// A recipe for one random combinational gate over existing nets.
#[derive(Debug, Clone)]
enum GateRecipe {
    Unary(u8, usize),
    Binary(u8, usize, usize),
    Mux(usize, usize, usize),
}

fn recipe_strategy() -> impl Strategy<Value = GateRecipe> {
    prop_oneof![
        (0u8..3, any::<usize>()).prop_map(|(k, a)| GateRecipe::Unary(k, a)),
        (0u8..6, any::<usize>(), any::<usize>()).prop_map(|(k, a, b)| GateRecipe::Binary(k, a, b)),
        (any::<usize>(), any::<usize>(), any::<usize>())
            .prop_map(|(s, a, b)| GateRecipe::Mux(s, a, b)),
    ]
}

/// Build a random DAG: every gate consumes already-existing nets, so the
/// result is acyclic by construction.
fn build(recipes: &[GateRecipe], num_inputs: usize) -> (Netlist, Vec<NetId>) {
    let mut n = Netlist::new("prop");
    let inputs: Vec<NetId> = (0..num_inputs).map(|i| n.input(format!("i{i}"))).collect();
    let mut nets = inputs.clone();
    for r in recipes {
        let pick = |i: usize| nets[i % nets.len()];
        let out = match *r {
            GateRecipe::Unary(k, a) => {
                let a = pick(a);
                match k {
                    0 => n.inv(a),
                    1 => n.buf(a),
                    _ => n.delay_buf(a),
                }
            }
            GateRecipe::Binary(k, a, b) => {
                let (a, b) = (pick(a), pick(b));
                match k {
                    0 => n.and2(a, b),
                    1 => n.nand2(a, b),
                    2 => n.or2(a, b),
                    3 => n.nor2(a, b),
                    4 => n.xor2(a, b),
                    _ => n.xnor2(a, b),
                }
            }
            GateRecipe::Mux(s, a, b) => {
                let (s, a, b) = (pick(s), pick(a), pick(b));
                n.mux2(s, a, b)
            }
        };
        nets.push(out);
    }
    let last = *nets.last().unwrap();
    n.output("o", last);
    (n, inputs)
}

/// A recipe for one random gate in a *clocked* DAG: combinational cells
/// plus every flip-flop flavour.
#[derive(Debug, Clone)]
enum SeqRecipe {
    Comb(GateRecipe),
    Dff(u8, usize, usize, usize),
}

fn seq_recipe_strategy() -> impl Strategy<Value = SeqRecipe> {
    prop_oneof![
        recipe_strategy().prop_map(SeqRecipe::Comb),
        (0u8..3, any::<usize>(), any::<usize>(), any::<usize>())
            .prop_map(|(k, d, e, r)| SeqRecipe::Dff(k, d, e, r)),
    ]
}

/// Build a random clocked DAG the same bottom-up way as [`build`], with
/// registers mixed in.
fn build_seq(recipes: &[SeqRecipe], num_inputs: usize) -> (Netlist, Vec<NetId>) {
    let mut n = Netlist::new("prop-seq");
    let inputs: Vec<NetId> = (0..num_inputs).map(|i| n.input(format!("i{i}"))).collect();
    let mut nets = inputs.clone();
    for r in recipes {
        let out = match r.clone() {
            SeqRecipe::Comb(c) => {
                let pick = |i: usize| nets[i % nets.len()];
                match c {
                    GateRecipe::Unary(k, a) => {
                        let a = pick(a);
                        match k {
                            0 => n.inv(a),
                            1 => n.buf(a),
                            _ => n.delay_buf(a),
                        }
                    }
                    GateRecipe::Binary(k, a, b) => {
                        let (a, b) = (pick(a), pick(b));
                        match k {
                            0 => n.and2(a, b),
                            1 => n.nand2(a, b),
                            2 => n.or2(a, b),
                            3 => n.nor2(a, b),
                            4 => n.xor2(a, b),
                            _ => n.xnor2(a, b),
                        }
                    }
                    GateRecipe::Mux(s, a, b) => {
                        let (s, a, b) = (pick(s), pick(a), pick(b));
                        n.mux2(s, a, b)
                    }
                }
            }
            SeqRecipe::Dff(k, d, e, r) => {
                let pick = |i: usize| nets[i % nets.len()];
                let (d, e, r) = (pick(d), pick(e), pick(r));
                match k {
                    0 => n.dff(d),
                    1 => n.dff_en(d, e),
                    _ => n.dff_en_rst(d, e, r),
                }
            }
        };
        nets.push(out);
    }
    let last = *nets.last().unwrap();
    n.output("o", last);
    (n, inputs)
}

/// Deterministic per-(step, input) stimulus word derived from one seed.
fn stim_word(seed: u64, step: usize, input: usize) -> u64 {
    let mut x = seed
        ^ (step as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (input as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The 64-way bitsliced evaluator is 64 independent scalar
    /// evaluators: over random clocked DAGs (all register flavours),
    /// every driven net matches in every lane at every step — including
    /// partial groups where only `lanes < 64` lanes are meaningful.
    #[test]
    fn bitsliced_matches_scalar_evaluators(
        recipes in prop::collection::vec(seq_recipe_strategy(), 1..50),
        num_inputs in 1usize..5,
        lanes in 1usize..=64,
        steps in 1usize..6,
        seed in any::<u64>(),
    ) {
        let (n, inputs) = build_seq(&recipes, num_inputs);
        prop_assert!(n.validate().is_ok());
        let mut bev = BitEvaluator::new(&n).unwrap();
        let mut sev: Vec<Evaluator> =
            (0..lanes).map(|_| Evaluator::new(&n).unwrap()).collect();
        for step in 0..steps {
            for (i, &net) in inputs.iter().enumerate() {
                let word = stim_word(seed, step, i);
                bev.set_input(net, word);
                for (lane, ev) in sev.iter_mut().enumerate() {
                    ev.set_input(net, (word >> lane) & 1 == 1);
                }
            }
            bev.clock(&n);
            for ev in &mut sev {
                ev.clock(&n);
            }
            for g in n.gates() {
                for (lane, ev) in sev.iter().enumerate() {
                    prop_assert_eq!(
                        bev.value_lane(g.output, lane),
                        ev.value(g.output),
                        "step {} lane {} net {:?}", step, lane, g.output
                    );
                }
            }
        }
    }

    /// Any bottom-up construction validates and evaluates.
    #[test]
    fn random_dags_validate_and_evaluate(
        recipes in prop::collection::vec(recipe_strategy(), 1..60),
        num_inputs in 1usize..6,
        bits in any::<u64>(),
    ) {
        let (n, inputs) = build(&recipes, num_inputs);
        prop_assert!(n.validate().is_ok());
        let mut ev = Evaluator::new(&n).unwrap();
        for (i, &net) in inputs.iter().enumerate() {
            ev.set_input(net, (bits >> i) & 1 == 1);
        }
        ev.settle(&n);
        // Settling twice is idempotent.
        let out = n.outputs()[0].1;
        let v1 = ev.value(out);
        ev.settle(&n);
        prop_assert_eq!(ev.value(out), v1);
    }

    /// xor_reduce equals the sequential fold regardless of tree shape.
    #[test]
    fn xor_reduce_matches_fold(values in prop::collection::vec(any::<bool>(), 1..24)) {
        let mut n = Netlist::new("xr");
        let nets: Vec<NetId> =
            (0..values.len()).map(|i| n.input(format!("i{i}"))).collect();
        let out = n.xor_reduce(&nets);
        n.output("o", out);
        let mut ev = Evaluator::new(&n).unwrap();
        for (net, &v) in nets.iter().zip(&values) {
            ev.set_input(*net, v);
        }
        ev.settle(&n);
        let want = values.iter().fold(false, |acc, &v| acc ^ v);
        prop_assert_eq!(ev.value(out), want);
        // A balanced tree has logarithmic depth.
        let depth = gm_netlist::stats::max_depth(&n).unwrap();
        prop_assert!(depth <= values.len().next_power_of_two().trailing_zeros() as usize + 1);
    }

    /// Area reports are additive: building the same gates twice doubles
    /// the GE total of the gate part.
    #[test]
    fn area_is_additive(recipes in prop::collection::vec(recipe_strategy(), 1..30)) {
        let (n1, _) = build(&recipes, 3);
        let doubled: Vec<GateRecipe> =
            recipes.iter().chain(recipes.iter()).cloned().collect();
        let (n2, _) = build(&doubled, 3);
        let a1 = gm_netlist::area::report(&n1);
        let a2 = gm_netlist::area::report(&n2);
        prop_assert!((a2.total_ge - 2.0 * a1.total_ge).abs() < 1e-9);
    }

    /// STA arrival times are monotone along every gate's input→output.
    #[test]
    fn sta_arrival_monotone(recipes in prop::collection::vec(recipe_strategy(), 1..40)) {
        let (n, _) = build(&recipes, 4);
        let t = gm_netlist::timing::analyze(&n).unwrap();
        for g in n.gates() {
            if g.kind.is_sequential() {
                continue;
            }
            let out_t = t.arrival_ps[g.output.index()];
            for &i in &g.inputs {
                prop_assert!(
                    out_t >= t.arrival_ps[i.index()] + g.kind.nominal_delay_ps(),
                    "gate output must be later than every input"
                );
            }
        }
    }

    /// The optimiser preserves the function of arbitrary random DAGs.
    #[test]
    fn optimizer_preserves_function(
        recipes in prop::collection::vec(recipe_strategy(), 1..50),
        num_inputs in 1usize..6,
        stimuli in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        use gm_netlist::{optimize, OptOptions};
        let (n, inputs) = build(&recipes, num_inputs);
        let (o, stats) = optimize(&n, &OptOptions::default());
        prop_assert!(stats.gates_after <= stats.gates_before);
        let mut ev_n = Evaluator::new(&n).unwrap();
        let mut ev_o = Evaluator::new(&o).unwrap();
        for bits in stimuli {
            for (i, &net) in inputs.iter().enumerate() {
                ev_n.set_input(net, (bits >> i) & 1 == 1);
            }
            for (i, &net) in o.inputs().iter().enumerate() {
                ev_o.set_input(net, (bits >> i) & 1 == 1);
            }
            ev_n.settle(&n);
            ev_o.settle(&o);
            prop_assert_eq!(
                ev_n.value(n.outputs()[0].1),
                ev_o.value(o.outputs()[0].1)
            );
        }
    }

    /// DFF pin-count bookkeeping survives arbitrary configs.
    #[test]
    fn dff_configs(d in any::<bool>(), en in any::<bool>(), rst in any::<bool>(), q0 in any::<bool>()) {
        let cfg = gm_netlist::DffConfig { has_enable: true, has_reset: true };
        let kind = GateKind::Dff(cfg);
        let next = kind.dff_next(q0, &[d, en, rst]);
        let expect = if rst { false } else if en { d } else { q0 };
        prop_assert_eq!(next, expect);
    }
}
