//! Cross-crate integration: the Table I mechanism — glitch leakage as a
//! pure consequence of event timing — holds end-to-end through netlist,
//! simulator, and statistics, with no leakage-specific code anywhere on
//! that path.

use glitchmask::masking::analysis::glitch_probe;
use glitchmask::masking::gadgets::sec_and2::build_sec_and2;
use glitchmask::masking::gadgets::sec_and2_pd::{build_sec_and2_pd, PdConfig};
use glitchmask::masking::gadgets::AndInputs;
use glitchmask::masking::schedule::{all_sequences, predicted_leaky, InputShare};
use glitchmask::netlist::{NetId, Netlist};

fn gadget() -> (Netlist, AndInputs) {
    let mut n = Netlist::new("g");
    let io =
        AndInputs { x0: n.input("x0"), x1: n.input("x1"), y0: n.input("y0"), y1: n.input("y1") };
    let out = build_sec_and2(&mut n, io);
    n.output("z0", out.z0);
    n.output("z1", out.z1);
    n.validate().unwrap();
    (n, io)
}

fn net_of(io: AndInputs, s: InputShare) -> NetId {
    match s {
        InputShare::X0 => io.x0,
        InputShare::X1 => io.x1,
        InputShare::Y0 => io.y0,
        InputShare::Y1 => io.y1,
    }
}

/// Every one of the 24 sequences is classified exactly as the paper's
/// rule predicts — the full Table I, as an automated test.
#[test]
fn table1_all_24_sequences_agree_with_the_rule() {
    let (n, io) = gadget();
    let vars = [(io.x0, io.x1), (io.y0, io.y1)];
    let mut leaky_biases = Vec::new();
    let mut safe_biases = Vec::new();
    for (i, seq) in all_sequences().into_iter().enumerate() {
        let arrivals: Vec<(NetId, u64)> = seq
            .iter()
            .enumerate()
            .map(|(c, &s)| (net_of(io, s), 10_000 + 50_000 * c as u64))
            .collect();
        let rep = glitch_probe(&n, &vars, &arrivals, 10_000, 40.0, 99 + i as u64);
        if predicted_leaky(&seq) {
            leaky_biases.push(rep.max_bias);
        } else {
            safe_biases.push(rep.max_bias);
        }
    }
    let min_leaky = leaky_biases.iter().cloned().fold(f64::MAX, f64::min);
    let max_safe = safe_biases.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        min_leaky > 2.0 * max_safe,
        "clean separation required: min leaky {min_leaky:.3} vs max safe {max_safe:.3}"
    );
}

/// The secAND2-PD delay assignment turns a *simultaneous* arrival into a
/// safe sequence: same probe, all shares fired at once, no bias.
#[test]
fn pd_gadget_is_safe_under_simultaneous_arrival() {
    let mut n = Netlist::new("pd");
    let io =
        AndInputs { x0: n.input("x0"), x1: n.input("x1"), y0: n.input("y0"), y1: n.input("y1") };
    let out = build_sec_and2_pd(&mut n, io, PdConfig::OPTIMAL);
    n.output("z0", out.z0);
    n.output("z1", out.z1);
    n.validate().unwrap();

    let arrivals: Vec<(NetId, u64)> =
        [io.x0, io.x1, io.y0, io.y1].iter().map(|&net| (net, 5_000)).collect();
    let rep = glitch_probe(&n, &[(io.x0, io.x1), (io.y0, io.y1)], &arrivals, 4_000, 40.0, 7);
    assert!(rep.max_bias < 0.08, "PD gadget must not leak: bias {}", rep.max_bias);
}

/// A sub-nanosecond *routing skew* that puts `x₀` last (what
/// uncontrolled FPGA place-and-route can produce, §II-A) makes the bare
/// combinational `secAND2` leak, while the PD gadget under identical
/// external skew stays clean — its 11.5 ns DelayUnits dwarf the skew and
/// re-impose the safe internal order.
#[test]
fn naive_uncontrolled_routing_leaks_pd_does_not() {
    // Routing detours of ~0.8 ns per hop; x0's path is the longest.
    let order = [InputShare::Y0, InputShare::Y1, InputShare::X1, InputShare::X0];
    const SKEW_PS: u64 = 800;

    let (n, io) = gadget();
    let arrivals: Vec<(NetId, u64)> = order
        .iter()
        .enumerate()
        .map(|(c, &s)| (net_of(io, s), 5_000 + SKEW_PS * c as u64))
        .collect();
    let naive = glitch_probe(&n, &[(io.x0, io.x1), (io.y0, io.y1)], &arrivals, 8_000, 60.0, 13);

    let mut n2 = Netlist::new("pd");
    let io2 = AndInputs {
        x0: n2.input("x0"),
        x1: n2.input("x1"),
        y0: n2.input("y0"),
        y1: n2.input("y1"),
    };
    let out = build_sec_and2_pd(&mut n2, io2, PdConfig::OPTIMAL);
    n2.output("z0", out.z0);
    n2.output("z1", out.z1);
    n2.validate().unwrap();
    let arrivals2: Vec<(NetId, u64)> = order
        .iter()
        .enumerate()
        .map(|(c, &s)| {
            let net = match s {
                InputShare::X0 => io2.x0,
                InputShare::X1 => io2.x1,
                InputShare::Y0 => io2.y0,
                InputShare::Y1 => io2.y1,
            };
            (net, 5_000 + SKEW_PS * c as u64)
        })
        .collect();
    let pd = glitch_probe(&n2, &[(io2.x0, io2.x1), (io2.y0, io2.y1)], &arrivals2, 8_000, 60.0, 13);
    assert!(
        naive.max_bias > 2.0 * pd.max_bias.max(0.05),
        "naive {} vs PD {}",
        naive.max_bias,
        pd.max_bias
    );
}
