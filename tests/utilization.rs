//! Cross-crate integration: the Table III utilisation invariants that
//! the reproduction must preserve (who is bigger/faster, the randomness
//! budget, the cycle counts).

use glitchmask::des::masked::{MaskedDesFf, MaskedDesPd};
use glitchmask::des::netlist_gen::{build_des_core, driver, SboxStyle};
use glitchmask::netlist::{area, timing, GateKind};

#[test]
fn cycle_counts_match_table3() {
    assert_eq!(MaskedDesFf::CYCLES_PER_ROUND, 7);
    assert_eq!(MaskedDesPd::CYCLES_PER_ROUND, 2);
    assert_eq!(MaskedDesFf::TOTAL_CYCLES, 115, "the paper's 115-cycle block");
    assert_eq!(driver::total_cycles(SboxStyle::Ff), 115);
}

#[test]
fn randomness_budget_is_14_bits_per_round() {
    assert_eq!(MaskedDesFf::FRESH_BITS_PER_ROUND, 14);
    assert_eq!(MaskedDesPd::FRESH_BITS_PER_ROUND, 14);
}

#[test]
fn pd_core_area_dominated_by_delay_units() {
    let pd = build_des_core(SboxStyle::Pd { unit_luts: 10 });
    let rep = area::report(&pd.netlist);
    // The paper: 52273 GE total, 12592 GE without DelayUnits.
    assert!((45_000.0..60_000.0).contains(&rep.total_ge), "PD total {} GE", rep.total_ge);
    assert!((10_000.0..16_000.0).contains(&rep.logic_ge()), "PD logic {} GE", rep.logic_ge());
    // ~493 DelayUnits of 10 elements in the paper.
    let units = rep.delay_buf_count / 10;
    assert!((450..550).contains(&units), "{units} DelayUnits");
}

#[test]
fn ff_core_smaller_and_faster_than_pd() {
    let ff = build_des_core(SboxStyle::Ff);
    let pd = build_des_core(SboxStyle::Pd { unit_luts: 10 });
    let (fa, pa) = (area::report(&ff.netlist), area::report(&pd.netlist));
    assert!(fa.total_ge < pa.total_ge);
    let (ft, pt) = (timing::analyze(&ff.netlist).unwrap(), timing::analyze(&pd.netlist).unwrap());
    // Paper: 183 vs 21 MHz — nearly an order of magnitude.
    assert!(
        ft.max_freq_mhz() > 5.0 * pt.max_freq_mhz(),
        "{:.0} vs {:.0} MHz",
        ft.max_freq_mhz(),
        pt.max_freq_mhz()
    );
    assert!((100.0..250.0).contains(&ft.max_freq_mhz()), "FF {:.0} MHz", ft.max_freq_mhz());
    assert!((10.0..30.0).contains(&pt.max_freq_mhz()), "PD {:.0} MHz", pt.max_freq_mhz());
}

#[test]
fn delay_unit_size_scales_pd_area_and_critical_path() {
    let small = build_des_core(SboxStyle::Pd { unit_luts: 2 });
    let big = build_des_core(SboxStyle::Pd { unit_luts: 10 });
    let (sa, ba) = (area::report(&small.netlist), area::report(&big.netlist));
    assert!(ba.delay_ge > 4.0 * sa.delay_ge);
    let (st, bt) =
        (timing::analyze(&small.netlist).unwrap(), timing::analyze(&big.netlist).unwrap());
    assert!(bt.critical_path_ps > 3 * st.critical_path_ps);
}

#[test]
fn ff_core_has_no_delay_elements() {
    let ff = build_des_core(SboxStyle::Ff);
    assert_eq!(ff.netlist.gates().iter().filter(|g| g.kind == GateKind::DelayBuf).count(), 0);
}

#[test]
fn fpga_view_within_band_of_paper() {
    // Paper FPGA columns: FF core 819 FF / 2129 LUT; PD core 672/7428.
    let ff = area::report(&build_des_core(SboxStyle::Ff).netlist);
    assert!((600..900).contains(&ff.ff_count), "FF count {}", ff.ff_count);
    assert!((1_800..3_200).contains(&ff.lut_estimate), "LUTs {}", ff.lut_estimate);
    let pd = area::report(&build_des_core(SboxStyle::Pd { unit_luts: 10 }).netlist);
    assert!((550..800).contains(&pd.ff_count), "PD FF count {}", pd.ff_count);
    assert!((6_000..9_000).contains(&pd.lut_estimate), "PD LUTs {}", pd.lut_estimate);
}

#[test]
fn optimizer_on_the_real_cores() {
    use glitchmask::netlist::{optimize, OptOptions};
    // The FF core barely shrinks (the generators emit lean logic), and
    // its function is preserved.
    let ff = build_des_core(SboxStyle::Ff);
    let (opt, stats) = optimize(&ff.netlist, &OptOptions::default());
    assert!(stats.gates_after <= stats.gates_before);
    assert!(
        stats.gates_after as f64 > 0.85 * stats.gates_before as f64,
        "generators should not leave >15% slack: {stats:?}"
    );
    let _ = opt;

    // The PD core under an *unconstrained* optimiser loses every
    // DelayUnit — the executable form of why the paper synthesises with
    // -exact_map / Keep Hierarchy.
    let pd = build_des_core(SboxStyle::Pd { unit_luts: 10 });
    let before = pd.netlist.gates().iter().filter(|g| g.kind == GateKind::DelayBuf).count();
    assert!(before > 4_000);
    let (stripped, _) = optimize(&pd.netlist, &OptOptions { preserve_delay_elements: false });
    let after = stripped.gates().iter().filter(|g| g.kind == GateKind::DelayBuf).count();
    assert_eq!(after, 0, "unconstrained optimisation deletes the countermeasure");
    // Protected optimisation keeps them all.
    let (kept, _) = optimize(&pd.netlist, &OptOptions::default());
    assert_eq!(kept.gates().iter().filter(|g| g.kind == GateKind::DelayBuf).count(), before);
}
