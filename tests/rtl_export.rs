//! Cross-crate integration: the generated cores export to structural
//! Verilog with the expected interface and cell population, and the VCD
//! path captures a full encryption.

use glitchmask::des::netlist_gen::driver::EncryptionInputs;
use glitchmask::des::netlist_gen::{build_des_core, DesCoreDriver, SboxStyle};
use glitchmask::masking::MaskRng;
use glitchmask::netlist::to_verilog;
use glitchmask::sim::{DelayModel, VcdSink};

#[test]
fn ff_core_verilog_interface() {
    let core = build_des_core(SboxStyle::Ff);
    let v = to_verilog(&core.netlist);
    assert!(v.contains("module masked_des_ff ("));
    assert!(v.contains("input clk;"));
    for port in ["pt_s0_0", "pt_s1_63", "key_s0_0", "mask13", "ctl_load", "ct_s0_0", "ct_s1_63"] {
        assert!(v.contains(port), "port {port} missing");
    }
    // One behavioural always block per flip-flop.
    let ffs = core.netlist.gates().iter().filter(|g| g.kind.is_sequential()).count();
    assert_eq!(v.matches("always @(posedge clk)").count(), ffs);
    assert!(v.trim_end().ends_with("endmodule"));
}

#[test]
fn pd_core_verilog_marks_every_delay_element() {
    let core = build_des_core(SboxStyle::Pd { unit_luts: 2 });
    let v = to_verilog(&core.netlist);
    let delay_cells = core
        .netlist
        .gates()
        .iter()
        .filter(|g| g.kind == glitchmask::netlist::GateKind::DelayBuf)
        .count();
    assert_eq!(v.matches("/* DELAY */").count(), delay_cells);
}

#[test]
fn vcd_captures_an_encryption() {
    let core = build_des_core(SboxStyle::Ff);
    let delays = DelayModel::nominal(&core.netlist);
    let timing = glitchmask::netlist::timing::analyze(&core.netlist).unwrap();
    let mut drv = DesCoreDriver::new(&core, &delays, timing.critical_path_ps * 6 / 5, 5);
    let mut rng = MaskRng::new(6);
    let inputs = EncryptionInputs::draw(0x0123456789ABCDEF, 0x133457799BBCDFF1, &mut rng);
    // Watch the ciphertext share nets.
    let nets: Vec<_> = core.ct.s0.iter().chain(&core.ct.s1).copied().collect();
    let init = vec![false; nets.len()];
    let mut vcd = VcdSink::new(&core.netlist, &nets, &init);
    let ct = drv.encrypt(&inputs, &mut vcd);
    assert_eq!(ct, glitchmask::des::Des::new(0x133457799BBCDFF1).encrypt_block(0x0123456789ABCDEF));
    assert!(vcd.num_events() > 64, "ciphertext wires must move: {}", vcd.num_events());
    let text = vcd.render("masked_des_ff", "1ps");
    assert!(text.contains("$enddefinitions"));
}
