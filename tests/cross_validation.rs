//! Cross-validation between the two power backends: the fast
//! cycle-accurate model used for the large campaigns and the gate-level
//! event simulation. They need not agree in absolute units, but the
//! *structure* of the traces must match: activity concentrated in the
//! same rounds, the same class-distinguishing statistics.

use glitchmask::des::tvla_src::{CoreVariant, CycleModelSource, GateLevelSource, SourceConfig};
use glitchmask::leakage::{Campaign, Class, TraceSource};

fn mean_trace<S: TraceSource>(src: &mut S, n: usize, class: Class) -> Vec<f64> {
    let mut acc = vec![0.0; src.num_samples()];
    let mut buf = vec![0.0; src.num_samples()];
    for _ in 0..n {
        src.trace(class, &mut buf);
        for (a, b) in acc.iter_mut().zip(&buf) {
            *a += b;
        }
    }
    acc.iter_mut().for_each(|a| *a /= n as f64);
    acc
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
    cov / (va * vb).sqrt()
}

/// Gate-level per-cycle mean power correlates strongly with the cycle
/// model's per-cycle mean for the FF core.
///
/// The gate-level driver runs 115 cycles (setup + load + 16×7 + flush);
/// the cycle model's 115 records start at key-load. We align on the 112
/// round cycles, which both cover.
#[test]
fn ff_mean_power_shapes_agree() {
    let mut cfg = SourceConfig::new(CoreVariant::Ff);
    cfg.noise_sigma = 0.0;
    let mut cyc = CycleModelSource::new(cfg.clone());
    let mut gate = GateLevelSource::new(cfg, 1, 0.0);

    let m_cyc = mean_trace(&mut cyc, 60, Class::Random);
    let m_gate = mean_trace(&mut gate, 25, Class::Random);

    // Both backends index the first round's IR-load activity at 3.
    let c: Vec<f64> = m_cyc[3..112].to_vec();
    let g: Vec<f64> = m_gate[3..112].to_vec();
    let r = pearson(&c, &g);
    assert!(r > 0.7, "per-cycle mean power must correlate across backends: r = {r:.3}");
}

/// Both backends agree that the PRNG-off core leaks in first order and
/// at comparable (scaled) trace counts.
#[test]
fn prng_off_flags_in_both_backends() {
    let mut cfg = SourceConfig::new(CoreVariant::Ff);
    cfg.prng_on = false;
    cfg.noise_sigma = 4.0;

    let cyc = CycleModelSource::new(cfg.clone());
    let r_cyc = Campaign::sequential(600, 21).run(&cyc);
    assert!(r_cyc.max_abs_t1() > 4.5, "cycle model: {}", r_cyc.max_abs_t1());

    let gate = GateLevelSource::new(cfg, 1, 0.0);
    let r_gate = Campaign::sequential(250, 22).run(&gate);
    assert!(r_gate.max_abs_t1() > 4.5, "gate level: {}", r_gate.max_abs_t1());
}

/// Gate-level traces are far from constant (glitch activity varies),
/// and the PD core's per-trace energy exceeds the FF core's per cycle
/// (everything evaluates at once).
#[test]
fn gate_level_activity_sanity() {
    let mut cfg = SourceConfig::new(CoreVariant::Ff);
    cfg.noise_sigma = 0.0;
    let mut ff = GateLevelSource::new(cfg.clone(), 1, 0.0);
    let mut a = vec![0.0; ff.num_samples()];
    let mut b = vec![0.0; ff.num_samples()];
    ff.trace(Class::Random, &mut a);
    ff.trace(Class::Random, &mut b);
    assert_ne!(a, b, "two acquisitions must differ (fresh masks)");

    cfg.variant = CoreVariant::Pd { unit_luts: 2 };
    let mut pd = GateLevelSource::new(cfg, 1, 0.0);
    let mut p = vec![0.0; pd.num_samples()];
    pd.trace(Class::Random, &mut p);
    let peak_ff = a.iter().cloned().fold(0.0, f64::max);
    let peak_pd = p.iter().cloned().fold(0.0, f64::max);
    assert!(peak_pd > peak_ff, "PD cycles concentrate more activity: {peak_pd} vs {peak_ff}");
}
