//! Cross-crate integration: the leakage-assessment pipeline produces
//! the paper's qualitative results at smoke-test scale.

use glitchmask::des::tvla_src::{CoreVariant, CycleModelSource, SourceConfig};
use glitchmask::leakage::detect::first_detection;
use glitchmask::leakage::{Campaign, THRESHOLD};

#[test]
fn prng_off_flags_within_hundreds_of_traces() {
    let mut cfg = SourceConfig::new(CoreVariant::Ff);
    cfg.prng_on = false;
    let det = first_detection(&Campaign::sequential(2_000, 11), &CycleModelSource::new(cfg), 16);
    assert!(
        det.traces.is_some_and(|n| n <= 512),
        "PRNG off must be detected quickly: {:?}",
        det.traces
    );
}

#[test]
fn ff_core_first_order_clean_at_smoke_scale() {
    let src = CycleModelSource::new(SourceConfig::new(CoreVariant::Ff));
    let r = Campaign::sequential(6_000, 12).run(&src);
    assert!(r.max_abs_t1() < 5.5, "protected FF core should not flag: {}", r.max_abs_t1());
}

#[test]
fn ff_core_second_order_grows() {
    // Second-order leakage is fundamental to 2-share masking: it must
    // grow with the trace count.
    let src = CycleModelSource::new(SourceConfig::new(CoreVariant::Ff));
    let small = Campaign::sequential(2_000, 13).run(&src);
    let big = Campaign::sequential(16_000, 13).run(&src);
    let m = |r: &glitchmask::leakage::TvlaResult| r.t2().iter().fold(0.0f64, |m, t| m.max(t.abs()));
    assert!(m(&big) > m(&small), "t2 must grow with traces: {} -> {}", m(&small), m(&big));
    assert!(m(&big) > THRESHOLD, "t2 must flag by 16k traces: {}", m(&big));
}

#[test]
fn undersized_delay_unit_leaks_first_order() {
    let src = CycleModelSource::new(SourceConfig::new(CoreVariant::Pd { unit_luts: 1 }));
    let r = Campaign::sequential(2_000, 14).run(&src);
    assert!(r.max_abs_t1() > THRESHOLD, "1-LUT DelayUnit must leak: {}", r.max_abs_t1());
}

#[test]
fn delay_unit_sweep_is_monotone() {
    let budget = 2_000;
    let max_t1 = |unit: usize| {
        let src = CycleModelSource::new(SourceConfig::new(CoreVariant::Pd { unit_luts: unit }));
        Campaign::sequential(budget, 15).run(&src).max_abs_t1()
    };
    let (t1, t5, t10) = (max_t1(1), max_t1(5), max_t1(10));
    assert!(t1 > t5, "leakage must fall with DelayUnit size: {t1} vs {t5}");
    assert!(t1 > 2.0 * t10, "1 LUT vs 10 LUTs: {t1} vs {t10}");
}

#[test]
fn pd_detects_later_than_undersized_and_ff_not_at_all() {
    let budget = 30_000;
    let detect_at = |variant: CoreVariant, prng: bool| {
        let mut cfg = SourceConfig::new(variant);
        cfg.prng_on = prng;
        first_detection(&Campaign::sequential(budget, 16), &CycleModelSource::new(cfg), 64).traces
    };
    let small = detect_at(CoreVariant::Pd { unit_luts: 1 }, true);
    let ff = detect_at(CoreVariant::Ff, true);
    assert!(small.is_some_and(|n| n < 2_000), "unit 1 detects early: {small:?}");
    assert!(ff.is_none(), "FF core must survive the smoke budget: {ff:?}");
}
