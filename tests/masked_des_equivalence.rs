//! Cross-crate integration: every DES implementation in the workspace —
//! reference, value-level masked cores, gate-level netlists (zero-delay
//! and event-driven) — must agree on random keys and plaintexts, with
//! the PRNG on and off.

use glitchmask::des::masked::{MaskedDes, MaskedDesFf, MaskedDesPd};
use glitchmask::des::netlist_gen::driver::{encrypt_functional, EncryptionInputs};
use glitchmask::des::netlist_gen::{build_des_core, DesCoreDriver, SboxStyle};
use glitchmask::des::Des;
use glitchmask::masking::MaskRng;
use glitchmask::sim::power::NullSink;
use glitchmask::sim::DelayModel;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

#[test]
fn value_level_cores_match_reference() {
    let mut seeds = SmallRng::seed_from_u64(0xE0E0);
    let mut rng = MaskRng::new(1);
    for _ in 0..20 {
        let key: u64 = seeds.random();
        let pt: u64 = seeds.random();
        let want = Des::new(key).encrypt_block(pt);
        assert_eq!(MaskedDes::new(key).encrypt_block(pt, &mut rng), want);
        assert_eq!(MaskedDesFf::new(key).encrypt_with_cycles(pt, &mut rng).0, want);
        assert_eq!(MaskedDesPd::new(key).encrypt_with_cycles(pt, &mut rng).0, want);
    }
}

#[test]
fn gate_level_cores_match_reference_functionally() {
    let mut seeds = SmallRng::seed_from_u64(0xE1E1);
    let mut rng = MaskRng::new(2);
    for style in [SboxStyle::Ff, SboxStyle::Pd { unit_luts: 1 }] {
        let core = build_des_core(style);
        for _ in 0..4 {
            let key: u64 = seeds.random();
            let pt: u64 = seeds.random();
            let inputs = EncryptionInputs::draw(pt, key, &mut rng);
            assert_eq!(
                encrypt_functional(&core, &inputs),
                Des::new(key).encrypt_block(pt),
                "style {style:?}"
            );
        }
    }
}

#[test]
fn event_driven_pd_core_matches_reference() {
    // The PD core under real transport-delay simulation with jitter:
    // delays change timing, never values.
    let core = build_des_core(SboxStyle::Pd { unit_luts: 2 });
    let delays = DelayModel::with_variation(&core.netlist, 0.15, 40.0, 3);
    let timing = glitchmask::netlist::timing::analyze(&core.netlist).unwrap();
    let mut drv = DesCoreDriver::new(&core, &delays, timing.critical_path_ps * 6 / 5, 4);
    let mut rng = MaskRng::new(5);
    for pt in [0x0123456789ABCDEFu64, 0xFFFFFFFFFFFFFFFF] {
        let inputs = EncryptionInputs::draw(pt, 0x133457799BBCDFF1, &mut rng);
        let ct = drv.encrypt(&inputs, &mut NullSink);
        assert_eq!(ct, Des::new(0x133457799BBCDFF1).encrypt_block(pt));
    }
}

#[test]
fn prng_off_degenerate_shares_still_encrypt() {
    let mut off = MaskRng::disabled();
    let want = Des::new(0x133457799BBCDFF1).encrypt_block(0x0123456789ABCDEF);
    assert_eq!(
        MaskedDesFf::new(0x133457799BBCDFF1).encrypt_with_cycles(0x0123456789ABCDEF, &mut off).0,
        want
    );
    let core = build_des_core(SboxStyle::Ff);
    let inputs = EncryptionInputs::draw(0x0123456789ABCDEF, 0x133457799BBCDFF1, &mut off);
    assert_eq!(inputs.pt.0, 0, "PRNG off: zero masks");
    assert_eq!(encrypt_functional(&core, &inputs), want);
}

#[test]
fn masked_ciphertexts_are_deterministic_in_value_random_in_shares() {
    // Different mask streams must give the same ciphertext.
    let pt = 0xA5A5_5A5A_F0F0_0F0F;
    let key = 0x0E329232EA6D0D73;
    let mut r1 = MaskRng::new(100);
    let mut r2 = MaskRng::new(200);
    let core = MaskedDesFf::new(key);
    let (c1, t1) = core.encrypt_with_cycles(pt, &mut r1);
    let (c2, t2) = core.encrypt_with_cycles(pt, &mut r2);
    assert_eq!(c1, c2);
    assert_ne!(t1, t2, "cycle activity must differ between mask streams");
}
