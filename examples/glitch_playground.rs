//! Watch glitches happen: drive a single `secAND2` through the
//! event-driven simulator with different share arrival orders and see
//! why "x last" leaks — the mechanism behind Table I.
//!
//! ```sh
//! cargo run --release --example glitch_playground
//! ```

use glitchmask::masking::gadgets::sec_and2::build_sec_and2;
use glitchmask::masking::gadgets::AndInputs;
use glitchmask::masking::schedule::{all_sequences, predicted_leaky, InputShare};
use glitchmask::masking::{MaskRng, MaskedBit};
use glitchmask::netlist::Netlist;
use glitchmask::sim::power::CountingSink;
use glitchmask::sim::{DelayModel, Simulator};

fn main() {
    let mut n = Netlist::new("secand2");
    let io =
        AndInputs { x0: n.input("x0"), x1: n.input("x1"), y0: n.input("y0"), y1: n.input("y1") };
    let out = build_sec_and2(&mut n, io);
    n.output("z0", out.z0);
    n.output("z1", out.z1);
    n.validate().unwrap();

    let delays = DelayModel::with_variation(&n, 0.15, 40.0, 1);
    let net_of = |s: InputShare| match s {
        InputShare::X0 => io.x0,
        InputShare::X1 => io.x1,
        InputShare::Y0 => io.y0,
        InputShare::Y1 => io.y1,
    };

    // For each arrival order, measure how the *expected toggle count*
    // varies with the unshared y — that variation is the leak.
    println!("secAND2 toggle statistics per arrival order (10k runs each):");
    println!("  order                E[toggles|y=0]  E[toggles|y=1]   Δ     Table I");
    let mut rng = MaskRng::new(5);
    for seq in all_sequences().into_iter().step_by(4) {
        let mut sums = [0.0f64; 2];
        let mut counts = [0u32; 2];
        for trial in 0..10_000u64 {
            let x = rng.bit();
            let y = rng.bit();
            let mx = MaskedBit::mask(x, &mut rng);
            let my = MaskedBit::mask(y, &mut rng);
            let share_val = |s: InputShare| match s {
                InputShare::X0 => mx.s0,
                InputShare::X1 => mx.s1,
                InputShare::Y0 => my.s0,
                InputShare::Y1 => my.s1,
            };
            let mut sim = Simulator::new(&n, &delays, trial);
            sim.init_all_zero();
            for (cycle, &s) in seq.iter().enumerate() {
                sim.schedule(net_of(s), 10_000 + 50_000 * cycle as u64, share_val(s));
            }
            let mut c = CountingSink::default();
            sim.run_until(300_000, &mut c);
            sums[usize::from(y)] += c.count as f64;
            counts[usize::from(y)] += 1;
        }
        let e0 = sums[0] / f64::from(counts[0]);
        let e1 = sums[1] / f64::from(counts[1]);
        let seq_str: Vec<String> = seq.iter().map(|s| s.to_string()).collect();
        println!(
            "  {}   {e0:>14.3}  {e1:>14.3}  {:>5.2}  {}",
            seq_str.join(" "),
            (e0 - e1).abs(),
            if predicted_leaky(&seq) { "leaks" } else { "safe" }
        );
    }
    println!();
    println!("Δ ≫ 0 exactly for the orders Table I marks as leaking: a glitch on");
    println!("the output XOR exposes y₀ ⊕ y₁ = y whenever an x share arrives last.");
}
