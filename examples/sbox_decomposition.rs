//! Explore the paper's S-box decomposition (§IV-A): rows as mini
//! S-boxes, their ANF, and the ten shared product terms.
//!
//! ```sh
//! cargo run --release --example sbox_decomposition
//! ```

use glitchmask::des::sbox::mini::{mini_sbox_anfs, TEN_PRODUCTS};
use glitchmask::des::sbox::{masked_sbox, SboxRandomness};
use glitchmask::des::tables::SBOXES;
use glitchmask::masking::{MaskRng, MaskedBit};

fn monomial_string(mask: u8) -> String {
    // Map ANF variable v_k back to the paper's x_{4-k} input naming.
    (0..4)
        .rev()
        .filter(|k| mask & (1 << k) != 0)
        .map(|k| format!("x{}", 4 - k))
        .collect::<Vec<_>>()
        .join("")
}

fn main() {
    let anfs = mini_sbox_anfs();

    // The paper's Eq. 3-style printout for S1, row 0.
    println!("S1, mini S-box 0 (row 0) in ANF:");
    for (j, anf) in anfs[0][0].outputs.iter().enumerate() {
        let mut terms = Vec::new();
        if anf.constant() {
            terms.push("1".to_owned());
        }
        for d in 1..=3 {
            for m in anf.monomials_of_degree(d) {
                terms.push(monomial_string(m));
            }
        }
        println!("  y{} = {}", j + 1, terms.join(" ⊕ "));
    }

    // Structural claims across all 32 mini S-boxes.
    let mut max_deg = 0;
    let mut used: std::collections::BTreeSet<u8> = Default::default();
    for rows in &anfs {
        for anf in rows {
            max_deg = max_deg.max(anf.max_degree());
            used.extend(anf.product_terms());
        }
    }
    println!("\nacross all 8 S-boxes × 4 rows:");
    println!("  max algebraic degree: {max_deg} (paper: ≤ 3)");
    println!(
        "  distinct non-linear monomials used: {} of the {} possible \
         (pairs + triples of 4 variables)",
        used.len(),
        TEN_PRODUCTS.len()
    );
    println!("  ⇒ the masked AND stage computes exactly these ten products once,");
    println!("    refreshed with 10 of the 14 fresh bits per round.");

    // Run one masked S-box evaluation and show it agrees with the table.
    let mut rng = MaskRng::new(7);
    let six = 0b011011u8;
    let bits: [MaskedBit; 6] =
        std::array::from_fn(|i| MaskedBit::mask((six >> (5 - i)) & 1 == 1, &mut rng));
    let rnd = SboxRandomness::draw(&mut rng);
    let out = masked_sbox(4, &bits, &rnd);
    let got = out.iter().fold(0u8, |acc, b| (acc << 1) | u8::from(b.unmask()));
    let row = (((six >> 4) & 0b10) | (six & 1)) as usize;
    let col = ((six >> 1) & 0xF) as usize;
    println!("\nmasked S5({six:06b}) = {got} (table says {})", SBOXES[4][row][col]);
}
