//! Export the generated masked DES cores as structural Verilog, plus a
//! VCD waveform of a glitchy secAND2 evaluation — the artefacts you'd
//! take to a real FPGA/ASIC flow or open in GTKWave.
//!
//! ```sh
//! cargo run --release --example export_rtl
//! ls target/experiments/rtl/
//! ```

use glitchmask::des::netlist_gen::{build_des_core, SboxStyle};
use glitchmask::masking::gadgets::sec_and2::build_sec_and2;
use glitchmask::masking::gadgets::AndInputs;
use glitchmask::netlist::{to_verilog, Netlist};
use glitchmask::sim::{DelayModel, Simulator, VcdSink};
use std::fs;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let dir = Path::new("target/experiments/rtl");
    fs::create_dir_all(dir)?;

    for (file, style) in
        [("masked_des_ff.v", SboxStyle::Ff), ("masked_des_pd.v", SboxStyle::Pd { unit_luts: 10 })]
    {
        let core = build_des_core(style);
        let v = to_verilog(&core.netlist);
        let path = dir.join(file);
        fs::write(&path, &v)?;
        println!(
            "{}: {} gates -> {} ({} lines)",
            core.netlist.name(),
            core.netlist.num_gates(),
            path.display(),
            v.lines().count()
        );
    }

    // A VCD showing the Table I leak: x0 arriving last.
    let mut n = Netlist::new("secand2_glitch");
    let io =
        AndInputs { x0: n.input("x0"), x1: n.input("x1"), y0: n.input("y0"), y1: n.input("y1") };
    let out = build_sec_and2(&mut n, io);
    n.name_net(out.z0, "z0");
    n.name_net(out.z1, "z1");
    n.output("z0", out.z0);
    n.output("z1", out.z1);
    n.validate().unwrap();

    let delays = DelayModel::nominal(&n);
    let mut sim = Simulator::new(&n, &delays, 0);
    sim.init_all_zero();
    let mut vcd = VcdSink::all_nets(&n);
    // Shares of x = 1, y = 0 with y0 = y1 = 1: the leaky order ends in x0.
    sim.schedule(io.y1, 10_000, true);
    sim.schedule(io.y0, 20_000, true);
    sim.schedule(io.x1, 30_000, false); // stays 0
    sim.schedule(io.x0, 40_000, true);
    sim.run_until(60_000, &mut vcd);
    let path = dir.join("secand2_x0_last.vcd");
    vcd.write_to(fs::File::create(&path)?, "secand2_glitch", "1ps")?;
    println!("glitch waveform ({} transitions) -> {}", vcd.num_events(), path.display());
    println!("\nopen the VCD in GTKWave and watch z0 pulse when x0 lands.");
    Ok(())
}
