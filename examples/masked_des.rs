//! The paper's case study end-to-end: encrypt with the reference DES,
//! the two masked cores (value-level and gate-level), and Triple-DES.
//!
//! ```sh
//! cargo run --release --example masked_des
//! ```

use glitchmask::des::masked::{MaskedDesFf, MaskedDesPd};
use glitchmask::des::netlist_gen::driver::{encrypt_functional, EncryptionInputs};
use glitchmask::des::netlist_gen::{build_des_core, SboxStyle};
use glitchmask::des::{Des, Tdes};
use glitchmask::masking::MaskRng;
use glitchmask::netlist::{area, timing};

fn main() {
    let key = 0x133457799BBCDFF1;
    let pt = 0x0123456789ABCDEF;
    let mut rng = MaskRng::new(42);

    // Reference.
    let des = Des::new(key);
    let ct = des.encrypt_block(pt);
    println!("reference DES:        {pt:016X} -> {ct:016X}");

    // Masked cores (cycle-accurate value level).
    let ff = MaskedDesFf::new(key);
    let (ct_ff, cycles_ff) = ff.encrypt_with_cycles(pt, &mut rng);
    println!(
        "secAND2-FF core:      {pt:016X} -> {ct_ff:016X}  ({} cycles, {} fresh bits/round)",
        cycles_ff.len(),
        MaskedDesFf::FRESH_BITS_PER_ROUND
    );

    let pd = MaskedDesPd::new(key);
    let (ct_pd, cycles_pd) = pd.encrypt_with_cycles(pt, &mut rng);
    println!(
        "secAND2-PD core:      {pt:016X} -> {ct_pd:016X}  ({} cycles, 10-LUT DelayUnits)",
        cycles_pd.len()
    );
    assert_eq!(ct_ff, ct);
    assert_eq!(ct_pd, ct);

    // Gate-level cores.
    for (name, style) in [
        ("gate-level FF core", SboxStyle::Ff),
        ("gate-level PD core", SboxStyle::Pd { unit_luts: 10 }),
    ] {
        let core = build_des_core(style);
        let inputs = EncryptionInputs::draw(pt, key, &mut rng);
        let ct_gate = encrypt_functional(&core, &inputs);
        let a = area::report(&core.netlist);
        let t = timing::analyze(&core.netlist).expect("valid core");
        println!(
            "{name}:   {pt:016X} -> {ct_gate:016X}  ({} gates, {:.0} GE, {:.0} MHz)",
            core.netlist.num_gates(),
            a.total_ge,
            t.max_freq_mhz()
        );
        assert_eq!(ct_gate, ct);
    }

    // PRNG-off sanity mode (the shares degenerate, the value is intact).
    let mut off = MaskRng::disabled();
    let (ct_off, _) = ff.encrypt_with_cycles(pt, &mut off);
    println!("FF core, PRNG off:    {pt:016X} -> {ct_off:016X}  (still correct — but leaks!)");
    assert_eq!(ct_off, ct);

    // Triple-DES, which the paper names as the reason DES still matters.
    let tdes = Tdes::new_2key(key, 0x0E329232EA6D0D73);
    let ct3 = tdes.encrypt_block(pt);
    println!("2-key TDES (EDE):     {pt:016X} -> {ct3:016X}");
    assert_eq!(tdes.decrypt_block(ct3), pt);

    println!("\nAll five implementations agree with the reference.");
}
