//! A self-contained leakage assessment of the masked DES cores — a
//! miniature of the paper's Section VII evaluation.
//!
//! ```sh
//! cargo run --release --example leakage_assessment
//! ```
//!
//! Runs three short TVLA campaigns on the secAND2-FF core (PRNG off,
//! PRNG on) and the secAND2-PD core, prints the t-statistic profiles,
//! and shows the traces-to-detection estimator.

use glitchmask::des::tvla_src::{CoreVariant, CycleModelSource, SourceConfig};
use glitchmask::leakage::detect::first_detection;
use glitchmask::leakage::{report, Campaign, THRESHOLD};

fn main() {
    let traces = 30_000;

    // 1. Sanity check: PRNG off must light up immediately.
    let mut cfg = SourceConfig::new(CoreVariant::Ff);
    cfg.prng_on = false;
    let det = first_detection(&Campaign::sequential(traces, 1), &CycleModelSource::new(cfg), 16);
    println!("PRNG off: first-order leakage after {:?} traces", det.traces);
    for (n, t) in det.history.iter().take(4) {
        println!("   after {n:>6} traces: max|t1| = {t:.1}");
    }

    // 2. The protected FF core: first order clean, second order loud.
    let src = CycleModelSource::new(SourceConfig::new(CoreVariant::Ff));
    let r = Campaign::sequential(traces, 2).run(&src);
    let (t1, t2) = (r.t1(), r.t2());
    println!("\nsecAND2-FF core, PRNG on, {traces} traces:");
    println!("1st order (max {:.1}):", t1.iter().fold(0.0f64, |m, t| m.max(t.abs())));
    println!("{}", report::ascii_curve(&t1, 72));
    println!("2nd order (max {:.1}):", t2.iter().fold(0.0f64, |m, t| m.max(t.abs())));
    println!("{}", report::ascii_curve(&t2, 72));

    // 3. The PD core with an undersized DelayUnit leaks in first order.
    let src = CycleModelSource::new(SourceConfig::new(CoreVariant::Pd { unit_luts: 1 }));
    let r = Campaign::sequential(5_000, 3).run(&src);
    let t1 = r.t1();
    let m = t1.iter().fold(0.0f64, |m, t| m.max(t.abs()));
    println!(
        "secAND2-PD with 1-LUT DelayUnits, 5k traces: max|t1| = {m:.1} ({})",
        if m > THRESHOLD { "LEAKS — the DelayUnit is too small" } else { "clean" }
    );

    // 4. The optimal 10-LUT PD core at the same budget: clean.
    let src = CycleModelSource::new(SourceConfig::new(CoreVariant::Pd { unit_luts: 10 }));
    let r = Campaign::sequential(5_000, 4).run(&src);
    let m = r.max_abs_t1();
    println!(
        "secAND2-PD with 10-LUT DelayUnits, 5k traces: max|t1| = {m:.1} ({})",
        if m > THRESHOLD { "leaks" } else { "clean — as the paper's optimum" }
    );

    println!("\nFull campaigns: `cargo run --release -p gm-bench --bin fig14` (etc.)");
}
