//! Quickstart: mask values, run the paper's gadgets, see why glitches
//! matter, and run a miniature leakage assessment.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use glitchmask::leakage::{Campaign, Class, TraceSource};
use glitchmask::masking::analysis::probing::probe_check;
use glitchmask::masking::gadgets::sec_and2::{build_insecure_and2, build_sec_and2};
use glitchmask::masking::gadgets::{sec_and2, AndInputs};
use glitchmask::masking::{MaskRng, MaskedBit};
use glitchmask::netlist::Netlist;

fn main() {
    // --- 1. Boolean masking basics -----------------------------------
    let mut rng = MaskRng::new(1);
    let x = MaskedBit::mask(true, &mut rng);
    let y = MaskedBit::mask(false, &mut rng);
    println!("x = 1 shared as ({}, {})", u8::from(x.s0), u8::from(x.s1));

    // Linear ops are share-wise; AND needs a gadget.
    let xor = x.xor(y);
    let and = sec_and2(x, y);
    println!(
        "x ⊕ y = {}, x · y = {} (via secAND2, no fresh randomness)",
        u8::from(xor.unmask()),
        u8::from(and.unmask())
    );

    // --- 2. Probing security, checked exhaustively --------------------
    let mut n = Netlist::new("demo");
    let io =
        AndInputs { x0: n.input("x0"), x1: n.input("x1"), y0: n.input("y0"), y1: n.input("y1") };
    let good = build_sec_and2(&mut n, io);
    n.output("z0", good.z0);
    n.output("z1", good.z1);
    let report = probe_check(&n, &[(io.x0, io.x1), (io.y0, io.y1)], &[]);
    println!("\nsecAND2 stationary first-order probing secure: {}", report.secure);

    let mut n2 = Netlist::new("demo_bad");
    let io2 = AndInputs {
        x0: n2.input("x0"),
        x1: n2.input("x1"),
        y0: n2.input("y0"),
        y1: n2.input("y1"),
    };
    let bad = build_insecure_and2(&mut n2, io2);
    n2.output("z0", bad.z0);
    n2.output("z1", bad.z1);
    let report = probe_check(&n2, &[(io2.x0, io2.x1), (io2.y0, io2.y1)], &[]);
    println!("classical masked AND probing secure: {} (its z0 = x0·y)", report.secure);

    // --- 3. A two-minute TVLA ----------------------------------------
    // A toy "device" leaking its fixed-class bit into one sample.
    #[derive(Clone)]
    struct Toy(MaskRng);
    impl TraceSource for Toy {
        fn fork(&self, s: u64) -> Self {
            Toy(MaskRng::new(s ^ 0x77))
        }
        fn num_samples(&self) -> usize {
            2
        }
        fn trace(&mut self, class: Class, out: &mut [f64]) {
            let noise = f64::from(self.0.bits(4) as u32) / 8.0;
            out[0] = noise;
            out[1] = noise + if class == Class::Fixed { 0.4 } else { 0.0 };
        }
    }
    let result = Campaign::sequential(20_000, 3).run(&Toy(MaskRng::new(9)));
    let t = result.t1();
    println!("\nTVLA on a leaky toy: t = [{:.1}, {:.1}] (±4.5 threshold)", t[0], t[1]);
    println!("sample 1 flags, sample 0 does not — the harness works.");
    println!("\nNext: `cargo run --release --example masked_des`");
}
